"""The replication backlog: PSYNC offsets over a bounded command ring.

Redis replication is a byte stream: every write the master accepts is
appended to the replication stream, and ``master_repl_offset`` counts
the bytes ever produced.  A bounded *backlog* keeps the most recent
tail of that stream so a replica that briefly disconnects can ask for
``PSYNC <replid> <offset>`` and receive just the bytes it missed
(``+CONTINUE``) instead of forcing a new fork + RDB transfer
(``+FULLRESYNC``).

This module reproduces that accounting over
:class:`~repro.kvs.aof.AofRecord` commands: each record occupies its
``encoded_size()`` bytes of the stream, offsets are record-aligned
(replicas only ever ack at record boundaries, as real replicas ack at
command boundaries), and eviction drops whole records from the head
once the ring exceeds its capacity.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from repro.kvs.aof import AofRecord


def derive_replid(seed: int, epoch: int = 0) -> str:
    """A deterministic 40-hex replication id (Redis uses 40 hex chars).

    Seeded so whole failover drills replay bit-identically; the epoch
    distinguishes the ids minted across successive promotions.
    """
    material = f"replid:{seed}:{epoch}".encode()
    return hashlib.blake2b(material, digest_size=20).hexdigest()


@dataclass(frozen=True)
class BacklogEntry:
    """One stream record plus the offset range it occupies."""

    start: int
    end: int
    record: AofRecord


class ReplicationBacklog:
    """Bounded ring of the master's most recent replication stream."""

    def __init__(
        self,
        replid: str,
        capacity_bytes: int = 1 << 20,
        start_offset: int = 0,
    ) -> None:
        if capacity_bytes < 1:
            raise ValueError("backlog capacity must be positive")
        self.replid = replid
        #: A promoted master remembers its previous lineage (PSYNC2's
        #: ``replid2``) so replicas of the old master can still partial
        #: resync against history produced before the switch.
        self.replid2: str = ""
        self.capacity_bytes = capacity_bytes
        #: Bytes ever appended to the stream (Redis master_repl_offset).
        self.master_offset = start_offset
        #: Offset of the first byte still buffered.
        self.start_offset = start_offset
        self._entries: deque[BacklogEntry] = deque()
        self._buffered_bytes = 0
        #: Whole records evicted from the head so far.
        self.evicted_records = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held in the ring."""
        return self._buffered_bytes

    def append(self, record: AofRecord) -> int:
        """Append one write to the stream; returns the new offset."""
        size = record.encoded_size()
        entry = BacklogEntry(
            self.master_offset, self.master_offset + size, record
        )
        self._entries.append(entry)
        self._buffered_bytes += size
        self.master_offset = entry.end
        while self._buffered_bytes > self.capacity_bytes and self._entries:
            evicted = self._entries.popleft()
            self._buffered_bytes -= evicted.end - evicted.start
            self.start_offset = evicted.end
            self.evicted_records += 1
        return self.master_offset

    def can_resync_from(self, replid: str, offset: int) -> bool:
        """Whether ``PSYNC replid offset`` can be served partially.

        The replica must share our lineage (current replid, or the
        pre-promotion ``replid2``) and its offset must still be covered
        by the ring: ``start_offset <= offset <= master_offset``.
        """
        if replid not in (self.replid, self.replid2) or not replid:
            return False
        return self.start_offset <= offset <= self.master_offset

    def records_since(self, offset: int) -> list[BacklogEntry]:
        """Every buffered entry starting at or after ``offset``."""
        return [e for e in self._entries if e.start >= offset]

    def describe(self) -> str:
        """Stable one-line rendering (used in journals/digests)."""
        return (
            f"backlog(replid={self.replid[:8]},off={self.master_offset},"
            f"start={self.start_offset},buf={self._buffered_bytes})"
        )
