"""Failover: electing, repairing, and promoting a replica to master.

When the failure detector's quorum agrees the master is gone, the
coordinator runs the promotion sequence Redis Sentinel (and Cluster)
follow:

1. **Elect** the replica with the highest replication offset — the one
   that loses the fewest writes; ties break on name for determinism.
2. **Repair** the winner's AOF.  The old master died without warning,
   so the promoted node must assume its own log took the same kind of
   damage a crash leaves behind: the log is serialized through the
   ``kvs.aof.bytes`` fault site (a ``torn-tail`` spec tears it
   mid-record) and decoded back with ``repair=True``.  The *dataset*
   is the replica's live memory — WAIT-acked writes were applied
   before they were acked, so they survive by construction — and the
   log is rebuilt from that image, making the persistence lineage
   whole again.
3. **Promote**: mint a new replid (epoch-derived, deterministic),
   keep the old one as ``replid2`` and carry the offset forward, so
   surviving peers partial-resync off the new master instead of
   forcing a round of forks.
4. **Repoint** the shard in the cluster's slot map
   (:meth:`promote_into_cluster`), so MOVED replies and ``CLUSTER
   SLOTS`` route clients at the promoted node.

The whole sequence is synchronous and deterministic — one call on the
simulated timeline — and returns a :class:`FailoverReport` with the
recovery stopwatch the figx-failover experiment plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkPartitionError, ReplicationError
from repro.faults.corrupt import corrupt_aof_bytes
from repro.faults.plan import SITE_AOF_BYTES, FaultPlan
from repro.kvs import aof as aof_mod
from repro.obs import tracer as obs
from repro.repl.detector import FailureDetector
from repro.repl.master import ReplicationMaster
from repro.repl.replica import ReplicaNode


@dataclass
class FailoverReport:
    """What one promotion did, and how long the outage lasted."""

    promoted: str
    epoch: int
    #: Offset the winner had applied (writes beyond it are lost).
    elected_offset: int
    #: Simulated time from master death (or first detection, when the
    #: death instant is unknown) to the promoted master serving writes.
    recovery_ns: int
    detected_at_ns: int
    promoted_at_ns: int
    #: Bytes a crash tore off the winner's AOF tail (repaired).
    aof_bytes_dropped: int = 0
    #: Peer resyncs against the new master: name -> CONTINUE/FULLRESYNC.
    peer_resyncs: dict[str, str] = field(default_factory=dict)
    #: Peers that could not be reattached (partitioned mid-resync).
    peers_lost: list[str] = field(default_factory=list)


class FailoverCoordinator:
    """Watches one master; promotes the best replica when it dies."""

    def __init__(
        self,
        master: ReplicationMaster,
        detector: FailureDetector,
        seed: int = 0,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.master = master
        self.detector = detector
        self.seed = seed
        self.plan = plan
        #: Monotonic promotion counter; feeds the new replid's epoch.
        self.epoch = 0
        self.promoted: Optional[ReplicationMaster] = None
        self.report: Optional[FailoverReport] = None

    def tick(self, now: int) -> Optional[FailoverReport]:
        """One detector evaluation; promotes when the quorum trips.

        Returns the :class:`FailoverReport` on the tick that performed
        the promotion, ``None`` otherwise (including every tick after —
        this coordinator performs at most one failover).
        """
        if self.promoted is not None:
            return None
        if not self.detector.check(now):
            return None
        return self.promote(now)

    def elect(self) -> ReplicaNode:
        """The replica with the most replicated data (ties: by name)."""
        candidates = [
            s.node
            for s in self.master.sessions.values()
            if s.node.engine.process.alive
        ]
        if not candidates:
            raise ReplicationError("no replica available to promote")
        return sorted(
            candidates, key=lambda n: (-n.applied_offset, n.name)
        )[0]

    def promote(self, now: int) -> FailoverReport:
        """Run the full election -> repair -> promotion sequence."""
        winner = self.elect()
        dropped = self._repair_aof(winner)
        self.epoch += 1
        old = self.master
        old.detach()
        new_master = ReplicationMaster(
            winner.engine,
            supervisor=None,
            seed=self.seed,
            replid_epoch=self.epoch,
            start_offset=winner.applied_offset,
            backlog_capacity=old.backlog.capacity_bytes,
            min_replicas_to_write=old.min_replicas_to_write,
            max_lag_ns=old.max_lag_ns,
            heartbeat_interval_ns=old.heartbeat_interval_ns,
            plan=old.plan,
            name=winner.name,
        )
        # PSYNC2 lineage continuity: peers still holding the old replid
        # at an offset the timeline covers get +CONTINUE, not a fork.
        new_master.backlog.replid2 = old.backlog.replid
        winner.replid = new_master.backlog.replid
        report = FailoverReport(
            promoted=winner.name,
            epoch=self.epoch,
            elected_offset=winner.applied_offset,
            recovery_ns=now
            - (
                old.died_at_ns
                if old.died_at_ns is not None
                else (self.detector.down_since or now)
            ),
            detected_at_ns=self.detector.down_since or now,
            promoted_at_ns=now,
            aof_bytes_dropped=dropped,
        )
        for name in sorted(old.sessions):
            session = old.sessions[name]
            if session.node is winner:
                continue
            if not session.node.engine.process.alive:
                report.peers_lost.append(name)
                continue
            new_master.add_replica(session.node, session.link)
            try:
                kind, _ = new_master.psync(name)
            except (NetworkPartitionError, ReplicationError):
                report.peers_lost.append(name)
                continue
            report.peer_resyncs[name] = kind
        self.promoted = new_master
        self.report = report
        if obs.ACTIVE:
            obs.emit_instant(
                "repl.failover.promote",
                obs.CAT_KVS,
                now,
                promoted=winner.name,
                epoch=self.epoch,
                offset=winner.applied_offset,
                recovery_ns=report.recovery_ns,
            )
        return report

    def _repair_aof(self, winner: ReplicaNode) -> int:
        """Crash-harden the winner's log before it serves as master.

        Serializes the AOF through the torn-tail fault site, decodes it
        back with repair, then rebuilds the log from the live dataset —
        the image the election actually chose — so acked writes stay
        durable even when the tail was torn.
        """
        engine = winner.engine
        if engine.aof is None:
            return 0
        data = aof_mod.encode(engine.aof)
        if self.plan is not None:
            spec = self.plan.fire(
                SITE_AOF_BYTES, stage="promotion", node=winner.name
            )
            if spec is not None:
                data = corrupt_aof_bytes(data, spec, self.plan.rng)
        _, dropped = aof_mod.decode(data, repair=True)
        engine.aof.records = list(
            aof_mod.compact_commands(
                engine.store.items_from(engine.process.mm)
            )
        )
        engine.aof.rewrite_buffer = []
        engine.aof.rewriting = False
        if dropped and obs.ACTIVE:
            obs.emit_instant(
                "repl.failover.aof-repair",
                obs.CAT_KVS,
                engine.clock.now,
                node=winner.name,
                dropped=dropped,
            )
        return dropped


def promote_into_cluster(
    cluster,
    shard_id: int,
    new_master: ReplicationMaster,
    address: str,
) -> None:
    """Install a promoted master as one cluster shard's serving node.

    Builds the shard plumbing (sharded server + supervisor) around the
    promoted engine, replaces ``cluster.shards[shard_id]``, and
    repoints the slot map at the promoted node's address — after which
    MOVED replies and ``CLUSTER SLOTS`` route clients to it and stale
    clients repair their caches on the first redirect.
    """
    from repro.cluster.shard import ClusterShard, ShardedCommandServer
    from repro.kvs.supervisor import SnapshotSupervisor

    engine = new_master.engine
    server = ShardedCommandServer(
        engine, shard_id=shard_id, slot_map=cluster.slot_map
    )
    supervisor = SnapshotSupervisor(engine, plan=new_master.plan)
    new_master.supervisor = supervisor
    cluster.shards[shard_id] = ClusterShard(
        shard_id, engine, server, supervisor
    )
    cluster.slot_map.set_address(shard_id, address)
    if obs.ACTIVE:
        obs.emit_instant(
            "cluster.failover.repair",
            obs.CAT_KVS,
            engine.clock.now,
            shard=shard_id,
            address=address,
            epoch=cluster.slot_map.epoch,
        )
