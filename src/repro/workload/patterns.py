"""Key access patterns: uniform and Gaussian (memtier's two options).

§6.1 fixes the key range at 2·10^8 with 8 B keys and 1 KiB values; §6.3
varies the access pattern between uniform random and a Gaussian
distribution, under which "parts of key-value pairs may be accessed
repeatedly" — i.e. the touched working set shrinks, which is what reduces
table CoW faults and proactive synchronizations in Figure 12.
"""

from __future__ import annotations

import numpy as np

from repro.determinism import seeded_rng

#: memtier's Gaussian pattern concentrates around the middle of the key
#: range; the standard deviation is range/10.
GAUSSIAN_SIGMA_FRACTION = 0.1


def key_indices(
    count: int,
    key_range: int,
    pattern: str = "uniform",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``count`` key indices in [0, key_range) under ``pattern``."""
    if rng is None:
        rng = seeded_rng(0)
    if key_range <= 0:
        raise ValueError("key_range must be positive")
    if pattern == "uniform":
        return rng.integers(0, key_range, size=count, dtype=np.int64)
    if pattern == "gaussian":
        center = key_range / 2.0
        sigma = key_range * GAUSSIAN_SIGMA_FRACTION
        keys = rng.normal(center, sigma, size=count)
        return np.clip(keys, 0, key_range - 1).astype(np.int64)
    raise ValueError(f"unknown pattern {pattern!r}")


def op_mask(
    count: int,
    set_ratio: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Boolean mask: True where the query is a SET.

    ``set_ratio`` is the *fraction* of SETs: 1.0 for the write-intensive
    Figure 9/10 workload, 0.5 for memtier "1:1", 1/11 for "1:10".
    """
    if rng is None:
        rng = seeded_rng(0)
    if not 0.0 <= set_ratio <= 1.0:
        raise ValueError("set_ratio must be in [0, 1]")
    if set_ratio >= 1.0:
        return np.ones(count, dtype=bool)
    if set_ratio <= 0.0:
        return np.zeros(count, dtype=bool)
    return rng.random(count) < set_ratio


def set_get_ratio(label: str) -> float:
    """Translate memtier's "S:G" ratio label into a SET fraction."""
    sets, _, gets = label.partition(":")
    s, g = float(sets), float(gets)
    if s < 0 or g < 0 or s + g == 0:
        raise ValueError(f"bad ratio {label!r}")
    return s / (s + g)
