"""Live-reshard workload: traffic keeps flowing while slots migrate.

The figx-reshard scenario: a cluster serves its merged open-loop
stream while a :class:`~repro.cluster.migrate.SlotMigrator` drains one
shard's slots to the others, key by key on the shared clock, possibly
with fork-based snapshots landing mid-window.  The driver extends
:mod:`repro.workload.cluster` in two ways:

* **a read-your-writes oracle** — every SET's value is unique (key
  index + query index), recorded in an expected-state dict the instant
  the server acks it; every GET is checked against that dict.  A miss
  where a value is expected is a *lost* read (a key fell through the
  migration), a mismatch is a *stale* read (served from the wrong
  side).  Zero of both is the correctness claim of the reshard PR.
* **migration head-of-line blocking** — every migrator tick's
  ``(shard_id, busy_ns)`` events enter the queueing solver as
  userspace busy batches: concurrently arriving queries on a shard
  that is busy DUMPing/RESTOREing wait exactly that long, while the
  machine-wide kernel lock stays free (migration is not kernel work —
  fork calls remain the only thing that serializes the machine).

Only half the keyspace is prepopulated: SETs that create fresh keys in
a still-MIGRATING slot land on the target via ``ASK``, so the run
naturally exercises the redirect protocol it is measuring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.migrate import (
    MigrationStats,
    SlotMigrator,
    plan_shard_drain,
)
from repro.errors import KvsError
from repro.metrics.latency import LatencySample, merge
from repro.sim.network import NetworkLink
from repro.workload.cluster import (
    ClusterWorkload,
    _solve_timeline,
    _solve_timeline_scalar,
)
from repro.workload.openloop import scalar_timeline_forced

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import SimCluster
    from repro.cluster.coordinator import SnapshotCoordinator


@dataclass(frozen=True)
class ReshardSpec:
    """When and how fast the live migration runs."""

    #: Shard whose entire slot range is drained (1 of 4 = 25%).
    source_shard: int = 0
    #: Migration begins once this fraction of the stream has arrived.
    start_fraction: float = 0.25
    #: One migrator tick every N served queries (drain pacing).
    tick_stride: int = 8
    keys_per_tick: int = 32
    slots_per_tick: int = 64


def prepopulate_versioned(
    cluster: "SimCluster", workload: ClusterWorkload
) -> dict[bytes, bytes]:
    """Load *half* the keys with versioned values; returns the oracle.

    Values carry their key index so a read served from the wrong key's
    cell (or a torn migration) cannot pass the check by accident.  The
    unpopulated half exists so mid-migration SETs create fresh keys —
    the ``ASK``-to-target path of the protocol.
    """
    expected: dict[bytes, bytes] = {}
    width = workload.spec.value_size
    for index, key in enumerate(workload.keys):
        if index % 2:
            continue
        value = (b"init:%d;" % index).ljust(width, b"\x00")
        cluster.shard_for_key(key).engine.set(key, value)
        expected[key] = value
    for shard in cluster.shards:
        shard.engine.store.dirty_since_save = 0
    return expected


@dataclass
class ReshardRunResult:
    """Latency + correctness outcome of one live-reshard run."""

    #: Per-query latency (arrival order) and arrival instants.
    latencies: np.ndarray
    arrivals: np.ndarray
    #: Query-index bounds of the migration: begin() fired before
    #: ``window[0]`` was served; the last tick drained by ``window[1]``.
    window: tuple[int, int]
    merged: LatencySample
    per_shard: dict[int, LatencySample]
    stats: MigrationStats
    #: Oracle verdicts.
    reads_checked: int
    lost_reads: int
    stale_reads: int
    #: Client redirect counters for the run.
    ask_redirects: int
    moved_redirects: int
    slot_cache_refreshes: int
    snapshots_completed: dict[int, int]
    kernel_ns: int
    refused_writes: int

    def split_by_window(self) -> tuple[np.ndarray, np.ndarray]:
        """Latencies of queries arriving inside vs outside the window."""
        lo, hi = self.window
        mask = np.zeros(len(self.latencies), dtype=bool)
        mask[lo:hi] = True
        return self.latencies[mask], self.latencies[~mask]


def run_reshard_workload(
    cluster: "SimCluster",
    workload: ClusterWorkload,
    reshard: ReshardSpec = ReshardSpec(),
    expected: Optional[dict[bytes, bytes]] = None,
    coordinator: Optional["SnapshotCoordinator"] = None,
    link: Optional[NetworkLink] = None,
    snapshot_rounds: tuple[int, ...] = (),
) -> ReshardRunResult:
    """Drive the stream while draining a shard; oracle-check every read.

    ``snapshot_rounds`` fires an all-shard BGSAVE round at each given
    query index.  Index-anchored rounds (rather than a clock-period
    policy) are what cost-inflated runs need: every fork call advances
    the shared clock by its full parent stall, so under an emulated
    multi-GiB instance the clock races far ahead of the arrival
    timeline and any ``period_ns`` schedule would re-fire on every
    subsequent tick.
    """
    if expected is None:
        expected = prepopulate_versioned(cluster, workload)
    client = cluster.client(link=link)
    clock = cluster.clock
    n = len(workload)
    arrivals = workload.arrivals_ns
    service = workload.service_ns
    shard_ids = np.empty(n, dtype=np.int32)
    kerns = np.zeros(n, dtype=np.int64)
    rtts = np.zeros(n, dtype=np.int64)
    fork_batches: list[tuple[int, int, list[tuple[int, int]]]] = []
    busy_batches: list[tuple[int, int, list[tuple[int, int]]]] = []
    fixed_ns = cluster.shards[0].engine.fork_engine.costs.fork_fixed_ns

    migrator = SlotMigrator(
        cluster,
        plan_shard_drain(cluster, source=reshard.source_shard),
        link=link,
        keys_per_tick=reshard.keys_per_tick,
        slots_per_tick=reshard.slots_per_tick,
    )
    start_index = min(n - 1, int(n * reshard.start_fraction))
    end_index = n  # overwritten when the drain completes mid-stream
    width = workload.spec.value_size
    reads_checked = lost = stale = refused = 0

    snapshot_set = set(snapshot_rounds)

    for i in range(n):
        arrival = int(arrivals[i])
        clock.advance_to(arrival)
        if coordinator is not None:
            tick_start = clock.now
            events = [
                (event.shard_id, event.fork_ns)
                for event in coordinator.tick()
            ]
            if events:
                fork_batches.append((i, tick_start, events))
        if i in snapshot_set:
            events = []
            for shard in cluster.shards:
                if shard.snapshotting:
                    continue
                before = clock.now
                if shard.begin_snapshot():
                    events.append((shard.shard_id, clock.now - before))
            if events:
                if fork_batches and fork_batches[-1][0] == i:
                    # The scalar solver consumes one batch per index:
                    # fold into the coordinator's batch from this tick.
                    fork_batches[-1][2].extend(events)
                else:
                    # Anchored to the arrival instant for the same
                    # reason as the migration batches below.
                    fork_batches.append((i, arrival, events))
        if i == start_index:
            migrator.begin()
        if (
            migrator.started
            and not migrator.done
            and (i - start_index) % reshard.tick_stride == 0
        ):
            events = migrator.tick()
            if events:
                # At most one busy batch lands per query index (one
                # tick per stride), matching the scalar solver's walk.
                # The batch is anchored to the *arrival* instant: its
                # busy_ns values were measured as clock deltas, and the
                # engine clock runs ahead of the arrival timeline (it
                # accumulates every shard's simulated work), so using
                # clock.now here would double-count that work.
                busy_batches.append((i, arrival, events))
            if migrator.done:
                end_index = i + 1
        key = workload.keys[workload.key_index[i]]
        before = clock.now
        try:
            if workload.is_set[i]:
                value = (b"v:%d:%d;" % (workload.key_index[i], i)).ljust(
                    width, b"\x00"
                )
                reply = client.execute(b"SET", key, value)
                if not isinstance(reply.value, Exception):
                    expected[key] = value
            else:
                reply = client.execute(b"GET", key)
                reads_checked += 1
                want = expected.get(key)
                if reply.value is None and want is not None:
                    lost += 1
                elif reply.value is not None and reply.value != want:
                    stale += 1
        except KvsError:
            refused += 1
            shard_ids[i] = cluster.slot_map.shard_of_key(key)
            continue
        kerns[i] = clock.now - before
        rtts[i] = reply.rtt_ns
        shard_ids[i] = reply.shard_id

    solve = (
        _solve_timeline_scalar
        if scalar_timeline_forced()
        else _solve_timeline
    )
    latencies, kernel_ns = solve(
        arrivals,
        service,
        kerns,
        rtts,
        shard_ids,
        fork_batches,
        len(cluster),
        fixed_ns,
        busy_batches,
    )
    per_shard = {
        shard.shard_id: LatencySample(
            latencies[shard_ids == shard.shard_id],
            arrivals[shard_ids == shard.shard_id],
        )
        for shard in cluster.shards
    }
    return ReshardRunResult(
        latencies=latencies,
        arrivals=arrivals,
        window=(start_index, end_index),
        merged=merge(list(per_shard.values())),
        per_shard=per_shard,
        stats=migrator.stats,
        reads_checked=reads_checked,
        lost_reads=lost,
        stale_reads=stale,
        ask_redirects=client.ask_redirects,
        moved_redirects=client.moved_redirects,
        slot_cache_refreshes=client.slot_cache_refreshes,
        snapshots_completed={
            s.shard_id: s.snapshots_completed for s in cluster.shards
        },
        kernel_ns=kernel_ns,
        refused_writes=refused,
    )
