"""Benchmark front-ends: redis-benchmark- and memtier-like generators.

A :class:`Workload` is a columnar batch of queries (numpy arrays) plus the
parameters that produced it.

*Resident hits.*  A SET whose key is resident dirties existing pages (CoW,
table faults, proactive syncs); a SET to a brand-new key allocates fresh
memory and touches no forked page table.  The default (``resident_hit=
None``) follows §6.1 literally: keys are drawn from a 2·10^8-key range
with 1 KiB values (~200 GiB of key space), so the probability of hitting
resident data scales with the instance size — 0.5 % at 1 GiB up to 32 % at
64 GiB.  This matches the paper's own interruption counts (Fig. 11: ~7.3 k
table-CoW faults accumulate over a 16 GiB snapshot ≈ its ~8.2 k leaf
tables) while keeping the engine out of saturation, as its measured tails
require.  Pass an explicit ``resident_hit`` to override (e.g. 1.0 for a
benchmark whose key range equals the dataset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import WorkloadConfig
from repro.units import GIB
from repro.workload.openloop import arrival_times
from repro.workload.patterns import key_indices, op_mask, set_get_ratio

#: §6.1: key range of the load generators.
PAPER_KEY_RANGE = 200_000_000
#: §6.1: value size.
PAPER_VALUE_SIZE = 1024


@dataclass
class Workload:
    """A generated query stream."""

    arrivals_ns: np.ndarray  # int64, sorted
    is_set: np.ndarray  # bool
    #: Key index of each *resident* query in [0, resident_keys);
    #: -1 marks a non-resident key (allocates fresh memory on SET).
    resident_key: np.ndarray  # int64
    resident_keys: int
    config: WorkloadConfig
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.arrivals_ns)

    @property
    def duration_ns(self) -> int:
        """Time span of the stream."""
        if len(self.arrivals_ns) == 0:
            return 0
        return int(self.arrivals_ns[-1] - self.arrivals_ns[0])


def resident_fraction(size_gb: float, key_range: int, value_size: int) -> float:
    """Probability that a benchmark key hits resident data."""
    resident_keys = size_gb * GIB / value_size
    return min(1.0, resident_keys / key_range)


def _generate(
    count: int,
    size_gb: float,
    config: WorkloadConfig,
    key_range: int,
    value_size: int,
    resident_hit: float | None = None,
) -> Workload:
    rng = config.rng()
    arrivals = arrival_times(
        count, config.rate_per_sec, config.clients, rng
    )
    sets = op_mask(count, config.set_ratio, rng)
    resident_keys = max(1, int(size_gb * GIB / value_size))
    if resident_hit is None:
        hit_p = resident_fraction(size_gb, key_range, value_size)
    else:
        hit_p = float(resident_hit)
    if hit_p >= 1.0:
        hits = np.ones(count, dtype=bool)
    else:
        hits = rng.random(count) < hit_p
    keys = key_indices(count, resident_keys, config.pattern, rng)
    resident_key = np.where(hits, keys, np.int64(-1))
    return Workload(
        arrivals_ns=arrivals,
        is_set=sets,
        resident_key=resident_key,
        resident_keys=resident_keys,
        config=config,
        meta={
            "size_gb": size_gb,
            "key_range": key_range,
            "value_size": value_size,
            "resident_hit_p": hit_p,
        },
    )


def redis_benchmark_workload(
    count: int,
    size_gb: float,
    rate_per_sec: int = 50_000,
    clients: int = 50,
    seed: int = 7,
    key_range: int = PAPER_KEY_RANGE,
    value_size: int = PAPER_VALUE_SIZE,
    resident_hit: float | None = None,
) -> Workload:
    """redis-benchmark in open-loop mode: SET-only, uniform keys (§6.2)."""
    config = WorkloadConfig(
        rate_per_sec=rate_per_sec,
        clients=clients,
        set_ratio=1.0,
        pattern="uniform",
        seed=seed,
    )
    return _generate(
        count, size_gb, config, key_range, value_size, resident_hit
    )


def memtier_workload(
    count: int,
    size_gb: float,
    ratio: str = "1:1",
    pattern: str = "uniform",
    rate_per_sec: int = 50_000,
    clients: int = 50,
    seed: int = 7,
    key_range: int = PAPER_KEY_RANGE,
    value_size: int = PAPER_VALUE_SIZE,
    resident_hit: float | None = None,
) -> Workload:
    """memtier-like generator: Set:Get ratio + access pattern (§6.3)."""
    config = WorkloadConfig(
        rate_per_sec=rate_per_sec,
        clients=clients,
        set_ratio=set_get_ratio(ratio),
        pattern=pattern,
        seed=seed,
    )
    workload = _generate(
        count, size_gb, config, key_range, value_size, resident_hit
    )
    workload.meta["ratio"] = ratio
    return workload
