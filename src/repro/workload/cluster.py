"""Cluster-aware open-loop workload and its queueing model.

One merged arrival stream (the open-loop contract of §3/§6.1: clients
submit at a fixed aggregate rate no matter how stalled the server is)
is routed key-by-key through a :class:`~repro.cluster.client.
ClusterClient`.  Latency accounting extends the single-instance model
of :mod:`repro.sim.snapshot_sim` with the two machine-level couplings
the §7 story needs:

* **per-shard queues** — each shard is single-threaded, so a query
  starts at ``max(arrival, shard.free_at)``; a stalled shard grows its
  own queue while its neighbours keep serving;
* **machine-wide kernel serialization** — simulated kernel time (fork
  calls the coordinator triggers, CoW/proactive-sync work the serving
  shard performs) runs under one big kernel lock: a query needing
  kernel time also waits for ``kernel_busy``.  Simultaneous fork calls
  therefore stall *every* shard back-to-back, which is exactly why the
  simultaneous policy hurts cluster-wide p99 under the default fork
  and barely registers under Async-fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.determinism import seeded_rng
from repro.errors import KvsError
from repro.metrics.latency import LatencySample, merge
from repro.sim.network import NetworkLink, ProductionEnvironment
from repro.workload.openloop import (
    arrival_times,
    busy_schedule,
    scalar_timeline_forced,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import SimCluster
    from repro.cluster.coordinator import SnapshotCoordinator


@dataclass(frozen=True)
class ClusterWorkloadSpec:
    """Shape of one cluster run's load."""

    #: Total routed commands (across all shards).
    count: int = 8_000
    #: Distinct keys; each shard holds roughly ``n_keys / n_shards``.
    n_keys: int = 16_000
    #: Aggregate open-loop arrival rate.
    rate_per_sec: float = 50_000.0
    clients: int = 50
    #: Fraction of SETs (the write-intensive mix of §6.2).
    set_ratio: float = 0.8
    value_size: int = 4_096
    #: Base single-query service time before jitter.
    base_service_ns: int = 10_000
    service_sigma: float = 0.15
    seed: int = 0


@dataclass
class ClusterWorkload:
    """Materialized arrivals, ops and service times for one run."""

    spec: ClusterWorkloadSpec
    arrivals_ns: np.ndarray
    is_set: np.ndarray
    key_index: np.ndarray
    service_ns: np.ndarray
    keys: list[bytes] = field(repr=False)

    def __len__(self) -> int:
        return len(self.arrivals_ns)


def build_cluster_workload(
    spec: ClusterWorkloadSpec,
    environment: Optional[ProductionEnvironment] = None,
) -> ClusterWorkload:
    """Generate the deterministic load for one run.

    ``environment`` applies the cloud modifiers (virtualized-CPU service
    inflation, noisy-neighbour jitter) the Figure 16 production runs use.
    """
    rng = seeded_rng(spec.seed)
    arrivals = arrival_times(
        spec.count, spec.rate_per_sec, clients=spec.clients, rng=rng
    )
    is_set = rng.random(spec.count) < spec.set_ratio
    key_index = rng.integers(0, spec.n_keys, size=spec.count)
    base = spec.base_service_ns
    sigma = spec.service_sigma
    if environment is not None:
        base = int(base * environment.service_inflation)
        sigma += environment.extra_jitter_sigma
    service = (base * rng.lognormal(0.0, sigma, spec.count)).astype(np.int64)
    keys = [b"key:%08d" % i for i in range(spec.n_keys)]
    return ClusterWorkload(spec, arrivals, is_set, key_index, service, keys)


def prepopulate(cluster: "SimCluster", workload: ClusterWorkload) -> None:
    """Load every key straight into its owner shard (no latency cost).

    Mirrors the experiments' warm-up phase: the dataset exists before
    measurement starts, and the dirty counters are cleared so the first
    snapshot round reflects measured-phase writes only.
    """
    value = b"\x00" * workload.spec.value_size
    for key in workload.keys:
        cluster.shard_for_key(key).engine.set(key, value)
    for shard in cluster.shards:
        shard.engine.store.dirty_since_save = 0


@dataclass
class ClusterRunResult:
    """Latency samples and counters from one cluster run."""

    #: Per-shard samples (indexed by shard id), as served.
    per_shard: dict[int, LatencySample]
    #: The cluster-wide view: every query, one merged sample.
    merged: LatencySample
    #: Snapshot windows per shard (fork start -> persist end).
    snapshot_windows: dict[int, list[tuple[int, int]]]
    #: Snapshots completed per shard during the run.
    snapshots_completed: dict[int, int]
    #: MOVED hops the client followed.
    moved_redirects: int
    #: Commands refused by MISCONF-style write refusal.
    refused_writes: int
    #: Total simulated kernel time the machine serialized.
    kernel_ns: int


def run_cluster_workload(
    cluster: "SimCluster",
    workload: ClusterWorkload,
    coordinator: Optional["SnapshotCoordinator"] = None,
    link: Optional[NetworkLink] = None,
) -> ClusterRunResult:
    """Drive the merged stream through the cluster; measure per query."""
    client = cluster.client(link=link)
    clock = cluster.clock
    n = len(workload)
    shard_ids = np.empty(n, dtype=np.int32)
    arrivals = workload.arrivals_ns
    service = workload.service_ns
    value = b"v" * workload.spec.value_size
    # Phase 1 — drive the engines in arrival order and record, per
    # query, everything the queueing model needs: kernel time consumed,
    # the serving shard, the reply RTT, refusals, and the coordinator's
    # fork events.  None of the engine side effects read queueing state
    # (they advance on the *arrival* clock), so the per-shard ``free_at``
    # chains and the machine-wide ``kernel_busy`` lock can be solved
    # afterwards — vectorized between coupling points (see DESIGN.md §14).
    kerns = np.zeros(n, dtype=np.int64)
    rtts = np.zeros(n, dtype=np.int64)
    #: ``(query_index, tick_start, [(shard_id, fork_ns), ...])`` per
    #: coordinator tick that actually triggered forks.
    fork_batches: list[tuple[int, int, list[tuple[int, int]]]] = []
    refused = 0
    fixed_ns = cluster.shards[0].engine.fork_engine.costs.fork_fixed_ns
    for i in range(n):
        arrival = int(arrivals[i])
        clock.advance_to(arrival)
        if coordinator is not None:
            # A triggered fork stalls its shard for the whole call, but
            # only the *copy* portion (page-table cloning, the part that
            # fights for memory bandwidth) serializes machine-wide; the
            # fixed syscall/bookkeeping overhead runs per-core.  This is
            # why simultaneous default forks pile up back-to-back while
            # simultaneous Async forks overlap almost entirely.  Forks
            # of one tick run concurrently (one core per shard), so they
            # all start at the tick instant even though the sequential
            # simulation advanced the clock through each call in turn.
            tick_start = clock.now
            events = [
                (event.shard_id, event.fork_ns)
                for event in coordinator.tick()
            ]
            if events:
                fork_batches.append((i, tick_start, events))
        key = workload.keys[workload.key_index[i]]
        before = clock.now
        try:
            if workload.is_set[i]:
                reply = client.execute(b"SET", key, value)
            else:
                reply = client.execute(b"GET", key)
        except KvsError:
            # MISCONF write refusal (persistent snapshot failure): the
            # command is answered immediately with an error (no kernel
            # work, no RTT charged — ``kerns``/``rtts`` stay zero, which
            # is exactly how the solver prices it).
            refused += 1
            shard_ids[i] = cluster.slot_map.shard_of_key(key)
            continue
        kerns[i] = clock.now - before
        rtts[i] = reply.rtt_ns
        shard_ids[i] = reply.shard_id
    # Phase 2 — solve the coupled queueing timeline.
    solve = (
        _solve_timeline_scalar
        if scalar_timeline_forced()
        else _solve_timeline
    )
    latencies, kernel_ns = solve(
        arrivals,
        service,
        kerns,
        rtts,
        shard_ids,
        fork_batches,
        len(cluster),
        fixed_ns,
    )
    per_shard = {
        shard.shard_id: LatencySample(
            latencies[shard_ids == shard.shard_id],
            arrivals[shard_ids == shard.shard_id],
        )
        for shard in cluster.shards
    }
    return ClusterRunResult(
        per_shard=per_shard,
        merged=merge(list(per_shard.values())),
        snapshot_windows={
            s.shard_id: list(s.snapshot_windows) for s in cluster.shards
        },
        snapshots_completed={
            s.shard_id: s.snapshots_completed for s in cluster.shards
        },
        moved_redirects=client.moved_redirects,
        refused_writes=refused,
        kernel_ns=kernel_ns,
    )


def _solve_timeline(
    arrivals: np.ndarray,
    service: np.ndarray,
    kerns: np.ndarray,
    rtts: np.ndarray,
    shard_ids: np.ndarray,
    fork_batches: list[tuple[int, int, list[tuple[int, int]]]],
    n_shards: int,
    fixed_ns: int,
    busy_batches: list[tuple[int, int, list[tuple[int, int]]]] = (),
) -> tuple[np.ndarray, int]:
    """Solve the per-shard / kernel-lock timeline, scans between couplings.

    Only two kinds of event couple the shards: coordinator fork ticks
    (they raise ``kernel_busy`` and the forked shard's ``free_at``) and
    queries with kernel time (they wait for and then hold the kernel
    lock).  Everything between two coupling events is an independent
    single-server chain per shard, solved exactly by
    :func:`~repro.workload.openloop.busy_schedule`; the coupling events
    themselves are stepped in order, so the result is bit-identical to
    the scalar recurrence (see DESIGN.md §14).

    ``busy_batches`` (same ``(query_index, tick_start, [(shard_id,
    busy_ns), ...])`` shape as ``fork_batches``) models *userspace*
    head-of-line blocking — a slot migrator's DUMP/ship/RESTORE batches.
    They occupy their shard like a long command but do not touch the
    machine-wide kernel lock; an empty list (the default) leaves every
    existing timeline bit-identical.
    """
    n = len(arrivals)
    latencies = np.empty(n, dtype=np.int64)
    free_at = [0] * n_shards
    kernel_busy = 0
    kernel_ns = 0
    by_shard = [np.flatnonzero(shard_ids == s) for s in range(n_shards)]
    ptr = [0] * n_shards

    def advance(s: int, upto: int) -> None:
        # Serve shard ``s``'s kernel-free queries with index < upto in
        # one scan; refused queries ride along (service only, zero rtt).
        idxs = by_shard[s]
        j = int(np.searchsorted(idxs, upto, side="left"))
        if j > ptr[s]:
            seg = idxs[ptr[s] : j]
            ends = busy_schedule(arrivals[seg], service[seg], free_at[s])
            latencies[seg] = ends - arrivals[seg] + rtts[seg]
            free_at[s] = int(ends[-1])
            ptr[s] = j

    # Coupling events in serving order; a fork or migration tick at
    # index i lands before query i is served.  Sort is stable, so at
    # one index forks apply first, then migration busy, then the query.
    events: list[tuple[int, int, Optional[tuple]]] = [
        (i, 0, (tick_start, evs, True))
        for i, tick_start, evs in fork_batches
    ]
    events += [
        (i, 0, (tick_start, evs, False))
        for i, tick_start, evs in busy_batches
    ]
    events += [(int(i), 1, None) for i in np.flatnonzero(kerns > 0)]
    events.sort(key=lambda e: (e[0], e[1]))
    for i, kind, payload in events:
        if kind == 0:
            tick_start, evs, couples_kernel = payload
            for shard_id, work_ns in evs:
                advance(shard_id, i)
                if couples_kernel:
                    fixed = min(work_ns, fixed_ns)
                    copy = work_ns - fixed
                    kernel_start = max(tick_start + fixed, kernel_busy)
                    kernel_busy = kernel_start + copy
                    kernel_ns += copy
                    free_at[shard_id] = max(free_at[shard_id], kernel_busy)
                else:
                    # Userspace work: the shard is busy, the kernel
                    # lock is not.
                    free_at[shard_id] = (
                        max(free_at[shard_id], tick_start) + work_ns
                    )
        else:
            s = int(shard_ids[i])
            advance(s, i)
            arrival = int(arrivals[i])
            kern = int(kerns[i])
            start = max(arrival, free_at[s])
            kernel_start = max(start, kernel_busy)
            kernel_busy = kernel_start + kern
            kernel_ns += kern
            end = kernel_start + kern + int(service[i])
            free_at[s] = end
            latencies[i] = end - arrival + int(rtts[i])
            # ``advance`` stopped right at i; skip it in the chain.
            ptr[s] += 1
    for s in range(n_shards):
        advance(s, n)
    return latencies, kernel_ns


def _solve_timeline_scalar(
    arrivals: np.ndarray,
    service: np.ndarray,
    kerns: np.ndarray,
    rtts: np.ndarray,
    shard_ids: np.ndarray,
    fork_batches: list[tuple[int, int, list[tuple[int, int]]]],
    n_shards: int,
    fixed_ns: int,
    busy_batches: list[tuple[int, int, list[tuple[int, int]]]] = (),
) -> tuple[np.ndarray, int]:
    """Reference scalar recurrence (``REPRO_SCALAR_TIMELINE=1``)."""
    n = len(arrivals)
    latencies = np.empty(n, dtype=np.int64)
    free_at = [0] * n_shards
    kernel_busy = 0
    kernel_ns = 0
    batch_pos = 0
    busy_pos = 0
    for i in range(n):
        arrival = int(arrivals[i])
        if (
            batch_pos < len(fork_batches)
            and fork_batches[batch_pos][0] == i
        ):
            _, tick_start, evs = fork_batches[batch_pos]
            batch_pos += 1
            for shard_id, fork_ns in evs:
                fixed = min(fork_ns, fixed_ns)
                copy = fork_ns - fixed
                kernel_start = max(tick_start + fixed, kernel_busy)
                kernel_busy = kernel_start + copy
                kernel_ns += copy
                free_at[shard_id] = max(free_at[shard_id], kernel_busy)
        if (
            busy_pos < len(busy_batches)
            and busy_batches[busy_pos][0] == i
        ):
            _, tick_start, evs = busy_batches[busy_pos]
            busy_pos += 1
            for shard_id, busy_ns in evs:
                # Userspace migration work: shard busy, kernel lock free.
                free_at[shard_id] = (
                    max(free_at[shard_id], tick_start) + busy_ns
                )
        shard = int(shard_ids[i])
        kern = int(kerns[i])
        start = max(arrival, free_at[shard])
        if kern > 0:
            kernel_start = max(start, kernel_busy)
            kernel_busy = kernel_start + kern
            kernel_ns += kern
            end = kernel_start + kern + int(service[i])
        else:
            end = start + int(service[i])
        free_at[shard] = end
        latencies[i] = end - arrival + int(rtts[i])
    return latencies, kernel_ns
