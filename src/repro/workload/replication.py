"""Open-loop workload against a replicated master.

The replication question the paper's framing raises is: *what does
attaching a replica cost the live traffic?*  A full sync starts with
the same fork as BGSAVE, so the serving thread stalls for
``parent_call_ns`` at the trigger — seconds under the default fork at
large instances — while arrivals keep coming at the open-loop rate.
This driver reproduces the single-instance queueing model
(``start = max(arrival, free_at)``) with the master's replication
duties folded in:

* ``cron()`` runs once per arrival tick (heartbeats, the
  ``repl.master.cron`` fault site);
* an in-flight full-sync child is stepped once per served command —
  the serverCron idiom, so Async-fork's copy genuinely interleaves
  with traffic instead of completing atomically;
* the fork stall of a triggered sync lands on ``free_at`` exactly like
  a save-point fork, and the *sync window* (trigger to replica online)
  is recorded so disturbed and undisturbed queries can be split.

Stream propagation costs the master nothing here — replication is
asynchronous — but every shipped record advances the replicas'
contact clocks, which is what the lag/staleness machinery reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.determinism import seeded_rng
from repro.errors import ReplicationError
from repro.metrics.latency import LatencySample
from repro.repl.master import FullSyncReport, ReplicationMaster
from repro.repl.replica import ReplicaNode
from repro.workload.openloop import (
    arrival_times,
    busy_schedule,
    scalar_timeline_forced,
)


@dataclass(frozen=True)
class ReplWorkloadSpec:
    """Shape of one replicated-master run's load."""

    count: int = 8_000
    n_keys: int = 8_000
    rate_per_sec: float = 50_000.0
    clients: int = 50
    set_ratio: float = 0.8
    value_size: int = 4_096
    base_service_ns: int = 10_000
    service_sigma: float = 0.15
    seed: int = 0


@dataclass
class ReplWorkload:
    """Materialized arrivals, ops and service times for one run."""

    spec: ReplWorkloadSpec
    arrivals_ns: np.ndarray
    is_set: np.ndarray
    key_index: np.ndarray
    service_ns: np.ndarray
    keys: list[bytes]

    def __len__(self) -> int:
        return len(self.arrivals_ns)


def build_repl_workload(spec: ReplWorkloadSpec) -> ReplWorkload:
    """Generate the deterministic load for one replicated run."""
    rng = seeded_rng(spec.seed)
    arrivals = arrival_times(
        spec.count, spec.rate_per_sec, clients=spec.clients, rng=rng
    )
    is_set = rng.random(spec.count) < spec.set_ratio
    key_index = rng.integers(0, spec.n_keys, size=spec.count)
    service = (
        spec.base_service_ns
        * rng.lognormal(0.0, spec.service_sigma, spec.count)
    ).astype(np.int64)
    keys = [b"rkey:%08d" % i for i in range(spec.n_keys)]
    return ReplWorkload(spec, arrivals, is_set, key_index, service, keys)


def prepopulate_master(
    master: ReplicationMaster, workload: ReplWorkload
) -> None:
    """Load the dataset before measurement (replicated to live replicas)."""
    value = b"\x00" * workload.spec.value_size
    for key in workload.keys:
        master.engine.set(key, value)
    master.engine.store.dirty_since_save = 0


@dataclass
class ReplRunResult:
    """Latency sample plus the sync-window decomposition of one run."""

    sample: LatencySample
    #: ``(start_ns, end_ns)`` of the full sync, when one was triggered.
    sync_window: Optional[tuple[int, int]]
    #: The completed sync's timing report (``None`` if it never finished).
    sync_report: Optional[FullSyncReport]
    #: Parent stall the sync's fork call added at the trigger.
    fork_stall_ns: int
    #: Writes refused by the min-replicas gate during the run.
    gated_writes: int
    final_clock_ns: int

    def split_by_window(self) -> tuple[np.ndarray, np.ndarray]:
        """Latencies ``(inside, outside)`` the sync window."""
        lat = self.sample.latencies_ns
        arr = self.sample.arrivals_ns
        if self.sync_window is None:
            return lat[:0], lat
        start, end = self.sync_window
        inside = (arr >= start) & (arr <= end)
        return lat[inside], lat[~inside]


def run_replicated_workload(
    master: ReplicationMaster,
    workload: ReplWorkload,
    sync_replica: Optional[ReplicaNode] = None,
    sync_link=None,
    sync_at: int = 0,
) -> ReplRunResult:
    """Drive the open-loop stream through a replicated master.

    When ``sync_replica`` is given, it is attached at arrival index
    ``sync_at`` and brought online through a real fork-backed full sync
    stepped cooperatively under the live traffic.
    """
    clock = master.clock
    n = len(workload)
    arrivals = workload.arrivals_ns
    service = workload.service_ns
    value = b"v" * workload.spec.value_size
    #: Queue occupancy per query: kernel time consumed by the engine
    #: call plus the modelled service time.  The engine's side effects
    #: (cron heartbeats, sync stepping, replication shipping) depend
    #: only on the *arrival* clock, never on queueing state, so the
    #: ``free_at`` recurrence can be solved after the fact in one scan.
    durations = np.empty(n, dtype=np.int64)
    stall_at: Optional[int] = None
    fork_stall_ns = 0
    gated = 0
    sync_session = None
    sync_start = None
    sync_window = None
    sync_report = None
    for i in range(n):
        arrival = int(arrivals[i])
        clock.advance_to(arrival)
        master.cron()
        if sync_replica is not None and i == sync_at:
            session = master.add_replica(sync_replica, sync_link)
            before = clock.now
            job = master.begin_full_sync(session)
            fork_stall_ns = clock.now - before
            if job is not None:
                sync_session = session
                sync_start = before
                stall_at = i
        if sync_session is not None and sync_session.sync_job is not None:
            report = master.step_full_sync(sync_session)
            if report is not None:
                sync_report = report
                assert sync_start is not None
                sync_window = (
                    sync_start,
                    clock.now + report.persist_ns + report.ship_ns,
                )
                sync_session = None
        key = workload.keys[workload.key_index[i]]
        before = clock.now
        try:
            if workload.is_set[i]:
                master.engine.set(key, value)
            else:
                master.engine.get(key)
        except ReplicationError:
            gated += 1
        kern = clock.now - before
        durations[i] = kern + int(service[i])
    latencies = _chain_latencies(
        arrivals, durations, stall_at, fork_stall_ns
    )
    # A sync still in flight at stream end: finish it off-window so the
    # replica is usable, but leave the window open-ended (unmeasured).
    if sync_session is not None and sync_session.sync_job is not None:
        job = sync_session.sync_job
        while not job.child_copy_done:
            job.step_child()
        sync_report = master.step_full_sync(sync_session)
        if sync_start is not None:
            sync_window = (sync_start, clock.now)
    return ReplRunResult(
        sample=LatencySample(latencies, arrivals),
        sync_window=sync_window,
        sync_report=sync_report,
        fork_stall_ns=fork_stall_ns,
        gated_writes=gated,
        final_clock_ns=clock.now,
    )


def _chain_latencies(
    arrivals: np.ndarray,
    durations: np.ndarray,
    stall_at: Optional[int],
    stall_ns: int,
) -> np.ndarray:
    """Latencies of the master's single-server chain, in one scan.

    A triggered sync's fork stall behaves exactly like a pseudo-query
    arriving at ``arrivals[stall_at]`` and occupying the server for
    ``stall_ns`` just before query ``stall_at`` is served, so it is
    spliced into the chain and its completion discarded.  All adds and
    maxima are int64, so the result is bit-identical to the scalar
    recurrence (see DESIGN.md §14).
    """
    if scalar_timeline_forced():
        return _chain_latencies_scalar(
            arrivals, durations, stall_at, stall_ns
        )
    if stall_at is None:
        ends = busy_schedule(arrivals, durations)
    else:
        arr = np.insert(arrivals, stall_at, arrivals[stall_at])
        dur = np.insert(durations, stall_at, np.int64(stall_ns))
        ends = np.delete(busy_schedule(arr, dur), stall_at)
    return ends - arrivals


def _chain_latencies_scalar(
    arrivals: np.ndarray,
    durations: np.ndarray,
    stall_at: Optional[int],
    stall_ns: int,
) -> np.ndarray:
    """Reference scalar recurrence (``REPRO_SCALAR_TIMELINE=1``)."""
    n = len(arrivals)
    latencies = np.empty(n, dtype=np.int64)
    free_at = 0
    for i in range(n):
        arrival = int(arrivals[i])
        if i == stall_at:
            free_at = max(free_at, arrival) + stall_ns
        end = max(arrival, free_at) + int(durations[i])
        free_at = end
        latencies[i] = end - arrival
    return latencies
