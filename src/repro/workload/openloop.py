"""Open-loop arrival processes.

In open-loop load generation the clients submit at a fixed aggregate rate
regardless of server progress, so a stalled server accumulates a queue and
the stall becomes visible as latency — the methodological point of
[Schroeder'06] and [Treadmill'16] that the paper adopts (§3, §6.1).

The number of clients shapes *burstiness* rather than rate: many clients
multiplexed over few connections deliver requests in clumps.  Figure 13's
finding — more clients ⇒ longer interruptions ⇒ higher tail latency — is
reproduced by modelling arrivals as batches whose size grows with the
client count while the long-run rate stays fixed.
"""

from __future__ import annotations

import numpy as np

from repro.determinism import seeded_rng
from repro.units import SEC

#: One batch per this many clients (50 clients -> batches of 5).
CLIENTS_PER_BATCH_SLOT = 10


def batch_size_for_clients(clients: int) -> int:
    """How many queries arrive back-to-back for a given client count."""
    return max(1, round(clients / CLIENTS_PER_BATCH_SLOT))


def arrival_times(
    count: int,
    rate_per_sec: float,
    clients: int = 50,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate ``count`` arrival instants (int64 ns, sorted).

    Arrivals come in batches of :func:`batch_size_for_clients` queries;
    batch inter-arrival gaps are exponential with mean chosen so the
    aggregate rate equals ``rate_per_sec``.  Queries within a batch are
    spread over a microsecond to keep ordering stable.
    """
    if count <= 0:
        raise ValueError("need a positive query count")
    if rate_per_sec <= 0:
        raise ValueError("need a positive rate")
    if rng is None:
        rng = seeded_rng(0)
    batch = batch_size_for_clients(clients)
    n_batches = (count + batch - 1) // batch
    mean_gap_ns = batch / rate_per_sec * SEC
    gaps = rng.exponential(mean_gap_ns, size=n_batches)
    batch_starts = np.cumsum(gaps)
    # Spread each batch's queries over ~1 us (wire serialization).
    offsets = np.tile(np.arange(batch) * 1_000, n_batches)[:count]
    starts = np.repeat(batch_starts, batch)[:count]
    return np.sort((starts + offsets).astype(np.int64))
