"""Open-loop arrival processes.

In open-loop load generation the clients submit at a fixed aggregate rate
regardless of server progress, so a stalled server accumulates a queue and
the stall becomes visible as latency — the methodological point of
[Schroeder'06] and [Treadmill'16] that the paper adopts (§3, §6.1).

The number of clients shapes *burstiness* rather than rate: many clients
multiplexed over few connections deliver requests in clumps.  Figure 13's
finding — more clients ⇒ longer interruptions ⇒ higher tail latency — is
reproduced by modelling arrivals as batches whose size grows with the
client count while the long-run rate stays fixed.
"""

from __future__ import annotations

import os

import numpy as np

from repro.determinism import seeded_rng
from repro.units import SEC

#: One batch per this many clients (50 clients -> batches of 5).
CLIENTS_PER_BATCH_SLOT = 10


def batch_size_for_clients(clients: int) -> int:
    """How many queries arrive back-to-back for a given client count."""
    return max(1, round(clients / CLIENTS_PER_BATCH_SLOT))


def arrival_times(
    count: int,
    rate_per_sec: float,
    clients: int = 50,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate ``count`` arrival instants (int64 ns, sorted).

    Arrivals come in batches of :func:`batch_size_for_clients` queries;
    batch inter-arrival gaps are exponential with mean chosen so the
    aggregate rate equals ``rate_per_sec``.  Queries within a batch are
    spread over a microsecond to keep ordering stable.
    """
    if count <= 0:
        raise ValueError("need a positive query count")
    if rate_per_sec <= 0:
        raise ValueError("need a positive rate")
    if rng is None:
        rng = seeded_rng(0)
    batch = batch_size_for_clients(clients)
    n_batches = (count + batch - 1) // batch
    mean_gap_ns = batch / rate_per_sec * SEC
    gaps = rng.exponential(mean_gap_ns, size=n_batches)
    # A truncated final batch carries fewer than `batch` queries, but the
    # gap preceding it was drawn for a full batch — the realized aggregate
    # rate undershoots `rate_per_sec` by count / (n_batches * batch),
    # badly so when the stream is only a few batches long.  Shrink that
    # one gap proportionally; when count is a batch multiple the factor
    # is exactly 1.0 and the stream is bit-identical to the old draw.
    last_size = count - (n_batches - 1) * batch
    gaps[-1] *= last_size / batch
    batch_starts = np.cumsum(gaps)
    # Spread each batch's queries over ~1 us (wire serialization).
    offsets = np.tile(np.arange(batch) * 1_000, n_batches)[:count]
    starts = np.repeat(batch_starts, batch)[:count]
    return np.sort((starts + offsets).astype(np.int64))


# -- vectorized queueing timelines --------------------------------------
#
# Every driver in this package (and the snapshot simulator) reduces to
# the single-server recurrence
#
#     end[i] = max(arrival[i], end[i-1]) + duration[i]
#
# which unrolls to ``end[i] = max_j<=i (arrival[j] + sum_{k=j..i} dur[k])``
# — a running maximum of ``arrival - shifted_cumsum`` plus the cumsum,
# i.e. one ``np.maximum.accumulate`` prefix scan.  All operations are
# int64 adds/maxima, so the vectorized schedule is *bit-identical* to
# the scalar loop, not merely close.

#: Environment toggle forcing every driver onto its scalar loop
#: (testing and the perf baseline use it; see DESIGN.md §14).
_SCALAR_TIMELINE = os.environ.get("REPRO_SCALAR_TIMELINE", "") == "1"


def scalar_timeline_forced() -> bool:
    """Whether the scalar (pre-vectorization) loops are forced on."""
    return _SCALAR_TIMELINE


def force_scalar_timeline(enabled: bool) -> None:
    """Toggle the scalar loops at runtime (tests and benchmarks)."""
    global _SCALAR_TIMELINE
    _SCALAR_TIMELINE = bool(enabled)


def busy_schedule(
    arrivals: np.ndarray,
    durations: np.ndarray,
    free_at: int = 0,
) -> np.ndarray:
    """Completion times of the single-server chain, exactly.

    ``arrivals`` and ``durations`` must be int64; ``free_at`` is the
    server's busy-until instant before the first event.  Returns the
    int64 ``end`` array of ``end = max(arrival, prev_end) + duration``
    with ``prev_end`` seeded at ``free_at``.  Starts are recovered as
    ``end - duration``.
    """
    if len(arrivals) == 0:
        return np.empty(0, dtype=np.int64)
    csum = np.cumsum(durations)
    shifted = np.empty_like(csum)
    shifted[0] = 0
    shifted[1:] = csum[:-1]
    peak = np.maximum.accumulate(arrivals - shifted)
    if free_at:
        np.maximum(peak, np.int64(free_at), out=peak)
    return peak + csum


def event_slots(arrivals: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Arrival index before which each scheduled event is processed.

    The scalar loops drain events (stalls, purges) with
    ``time <= arrival[i]`` before serving query ``i``; an event's slot
    is therefore the first arrival index at or after its time.  Events
    with ``slot == len(arrivals)`` fall past the stream end and are
    dropped, exactly as the scalar loops leave them unprocessed.
    """
    return np.searchsorted(arrivals, times, side="left")
