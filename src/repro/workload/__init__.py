"""Workload generation: open-loop arrivals + key access patterns.

``redis_benchmark_workload`` and ``memtier_workload`` mirror the two load
generators of §6.1, both enhanced to open-loop mode (queries are issued
without waiting for earlier replies), which is what makes queueing delay
visible in the latency measurements [Schroeder et al.; Treadmill].
"""

from repro.workload.generators import (
    Workload,
    memtier_workload,
    redis_benchmark_workload,
)
from repro.workload.openloop import arrival_times
from repro.workload.patterns import key_indices

__all__ = [
    "Workload",
    "arrival_times",
    "key_indices",
    "memtier_workload",
    "redis_benchmark_workload",
]
