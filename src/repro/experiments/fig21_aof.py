"""Figure 21 (Appendix C): latency of log-rewriting (BGREWRITEAOF) queries.

AOF rewriting forks exactly like BGSAVE, so it inherits the same spikes.
With AOF enabled the whole engine runs slower (fsync back-pressure; the
paper measures normal p99 rising from 0.079 ms to 1.56 ms on 16 GiB), but
the fork-method ordering is unchanged.  Paper p99 anchors:

    1 GiB:  DEF 11.53 / ODF 5.39  / Async 3.25  ms
    8 GiB:  DEF 84.03 / ODF 14.55 / Async 8.16  ms
    64 GiB: DEF 1093.35 / ODF 88.51 / Async 25.59 ms
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point
from repro.experiments.registry import register
from repro.metrics.report import Comparison, ExperimentReport, Table

SIZES = (1, 8, 64)
PAPER_P99 = {
    (1, "default"): 11.53, (1, "odf"): 5.39, (1, "async"): 3.25,
    (8, "default"): 84.03, (8, "odf"): 14.55, (8, "async"): 8.16,
    (64, "default"): 1093.35, (64, "odf"): 88.51, (64, "async"): 25.59,
}


@register("fig21", "Log-rewriting (AOF) query latency")
def run(profile: SimulationProfile) -> ExperimentReport:
    """BGREWRITEAOF with the three fork methods at 1/8/64 GiB."""
    report = ExperimentReport(
        "fig21", "p99/max latency of log rewriting queries"
    )
    table = Table(
        "Figure 21 — AOF log rewriting",
        ["size GiB", "DEF p99", "ODF p99", "Async p99",
         "DEF max", "ODF max", "Async max"],
    )
    points = {}
    for size in SIZES:
        row = [size]
        for method in ("default", "odf", "async"):
            point = run_point(
                profile, size, method, aof=True, rewrite=True
            )
            points[(size, method)] = point
            row.append(point.snap_p99_ms)
        for method in ("default", "odf", "async"):
            row.append(points[(size, method)].snap_max_ms)
        table.add_row(*row)
    report.add_table(table)

    for size in SIZES:
        report.comparisons.append(
            Comparison(
                f"Async p99 @{size}GiB",
                PAPER_P99[(size, "async")],
                points[(size, "async")].snap_p99_ms,
            )
        )
    report.comparisons.append(
        Comparison(
            "DEF p99 @64GiB", PAPER_P99[(64, "default")],
            points[(64, "default")].snap_p99_ms,
        )
    )

    report.check(
        "method ordering Async <= ODF <= DEF holds at 8 and 64 GiB",
        all(
            points[(s, "async")].snap_p99_ms
            <= points[(s, "odf")].snap_p99_ms
            <= points[(s, "default")].snap_p99_ms
            for s in (8, 64)
        ),
    )
    report.check(
        "AOF (fsync pressure) raises latencies vs the snapshot runs",
        points[(8, "async")].norm_p99_ms
        > run_point(profile, 8, "async").norm_p99_ms,
    )
    report.check(
        "DEF rewrite latency explodes with size (64GiB > 10x 1GiB)",
        points[(64, "default")].snap_p99_ms
        > 10 * points[(1, "default")].snap_p99_ms,
    )
    return report
