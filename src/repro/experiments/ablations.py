"""Ablation studies of the design choices DESIGN.md calls out.

Not figures from the paper, but measurements backing three design
decisions §4.2/§4.3 argue in prose:

* **Sync granularity** — the parent copies a whole 512-PTE table per
  proactive synchronization because "accurately identifying which one
  will be modified is expensive in practice"; per-PTE synchronization
  would interrupt the parent on nearly every resident write.
* **Sync strategy** — "the parent copies" beats "the parent notifies the
  child and waits", because the notify round-trip adds cost to the same
  interruption.
* **Two-way pointer** — VMA-wide checkpoints would otherwise scan every
  PMD entry of large VMAs long after the copy finished.
"""

from __future__ import annotations

from repro.config import AsyncForkConfig, SimulationProfile
from repro.core.async_fork import AsyncFork
from repro.experiments.registry import register
from repro.kernel.task import Process
from repro.mem.frames import FrameAllocator
from repro.metrics.report import ExperimentReport, Table
from repro.sim.disk import DiskModel
from repro.sim.snapshot_sim import SnapshotSimConfig, simulate_snapshot
from repro.units import MIB, us
from repro.workload.generators import (
    memtier_workload,
    redis_benchmark_workload,
)

SIZE_GB = 8


def _run(
    profile: SimulationProfile,
    pattern: str = "uniform",
    copy_threads: int = 8,
    **overrides,
):
    # resident_hit=1.0: the benchmark key range matches the dataset, so
    # every write lands on forked memory — the regime where proactive
    # synchronization choices matter most.
    if pattern == "uniform":
        workload = redis_benchmark_workload(
            profile.query_count, SIZE_GB, seed=11, resident_hit=1.0
        )
    else:
        workload = memtier_workload(
            profile.query_count, SIZE_GB, ratio="1:0", pattern=pattern,
            seed=11, resident_hit=1.0,
        )
    config = SnapshotSimConfig(
        size_gb=SIZE_GB,
        method="async",
        workload=workload,
        copy_threads=copy_threads,
        disk=DiskModel(speedup=profile.persist_speedup),
        seed=23,
        **overrides,
    )
    return simulate_snapshot(config)


@register("ablation", "Design-choice ablations (sync granularity/strategy, "
          "two-way pointer)")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Run all three ablations on the 8 GiB setup."""
    report = ExperimentReport("ablation", "Async-fork design ablations")

    # 1. Sync granularity.  A Gaussian write pattern with a single copy
    # thread maximizes repeated writes under the same tables while the
    # copy is in flight — the regime where granularity matters.
    table_g = _run(
        profile, pattern="gaussian", copy_threads=1,
        sync_granularity="table",
    )
    pte_g = _run(
        profile, pattern="gaussian", copy_threads=1,
        sync_granularity="pte",
    )
    gran = Table(
        "ablation 1 — proactive sync granularity (8GiB)",
        ["granularity", "interruptions", "oos ms", "snap p99 ms",
         "snap max ms"],
    )
    for label, res in (("512-PTE table", table_g), ("single PTE", pte_g)):
        gran.add_row(
            label, res.counts["proactive_syncs"],
            res.out_of_service_ns() / 1e6,
            res.snapshot_queries().p99_ms(),
            res.snapshot_queries().max_ms(),
        )
    report.add_table(gran)
    report.check(
        "per-PTE sync interrupts the parent more often",
        pte_g.counts["proactive_syncs"]
        > 1.3 * table_g.counts["proactive_syncs"],
    )

    # 2. Sync strategy: parent-copies vs notify-child-and-wait.
    copies = _run(profile)
    notify = _run(profile, sync_handshake_ns=us(8))
    strat = Table(
        "ablation 2 — sync strategy (8GiB)",
        ["strategy", "oos ms", "snap p99 ms", "snap max ms"],
    )
    strat.add_row(
        "parent copies (paper)", copies.out_of_service_ns() / 1e6,
        copies.snapshot_queries().p99_ms(),
        copies.snapshot_queries().max_ms(),
    )
    strat.add_row(
        "notify child + wait", notify.out_of_service_ns() / 1e6,
        notify.snapshot_queries().p99_ms(),
        notify.snapshot_queries().max_ms(),
    )
    report.add_table(strat)
    report.check(
        "notify-and-wait keeps the parent out of service longer",
        notify.out_of_service_ns() > copies.out_of_service_ns(),
    )

    # 3. Two-way pointer: functional-tier PMD-check counting.
    checks = {}
    for label, use_pointer in (("with pointer", True),
                               ("without pointer", False)):
        frames = FrameAllocator()
        parent = Process(frames, name="ablation3")
        vma = parent.mm.mmap(64 * MIB)
        for offset in range(0, 64 * MIB, 1 << 21):
            parent.mm.write_memory(vma.start + offset, b"x")
        engine = AsyncFork(
            config=AsyncForkConfig(use_two_way_pointer=use_pointer)
        )
        result = engine.fork(parent)
        # While the child copy is still nominally in flight, the parent
        # performs ten VMA-wide modifications.  The first one synchronizes
        # the whole VMA either way; with the pointer the remaining nine
        # are O(1) connection checks, without it each re-scans every PMD.
        for _ in range(10):
            parent.mm.mprotect(vma.start, vma.size, vma.prot)
        result.session.run_to_completion()
        checks[label] = result.stats.pmd_checks
        result.child.exit()
    ptr = Table(
        "ablation 3 — VMA-wide checkpoint cost after copy completion",
        ["variant", "PMD slots examined (10 mprotects of a 64MiB VMA)"],
    )
    for label, count in checks.items():
        ptr.add_row(label, count)
    report.add_table(ptr)
    report.check(
        "the two-way pointer removes the per-PMD scans",
        checks["with pointer"] < checks["without pointer"] / 5,
    )
    return report
