"""Figures 4 & 5: query latency under the default fork vs ODF vs no fork.

The motivation experiment (§3.2): normal-query latency barely moves with
instance size, Snapshot-DEF latency explodes (the parent is blocked for
the whole page-table copy), and Snapshot-ODF sits in between.  At 64 GiB
the paper reports DEF p99 911.95 ms / max 1204.78 ms against ODF's
3.96 ms / 59.28 ms.

Profile note: with the quick profile the persist phase (and with it the
snapshot-query population) is compressed, which *raises* measured p99s for
mid-size instances relative to the paper — the fork block is a physical
constant while the window shrinks.  The orderings and growth trends are
profile-invariant; ``REPRO_PROFILE=full`` restores the paper's protocol.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point, sweep_sizes
from repro.experiments.registry import register
from repro.metrics.report import Comparison, ExperimentReport, Table

PAPER_64G = {
    ("default", "p99"): 911.95,
    ("default", "max"): 1204.78,
    ("odf", "p99"): 3.96,
    ("odf", "max"): 59.28,
}


def points(profile: SimulationProfile) -> list[dict]:
    """The sweep's points, for ``--jobs`` fan-out (serial order)."""
    return [
        {"size_gb": size, "method": method}
        for size in sweep_sizes(profile)
        for method in ("none", "default", "odf")
    ]


@register(
    "fig4-5",
    "Normal vs Snapshot-DEF vs Snapshot-ODF latencies",
    points=points,
)
def run(profile: SimulationProfile) -> ExperimentReport:
    """Sweep sizes for methods none/default/odf and report p99 + max."""
    report = ExperimentReport(
        "fig4-5", "p99 (Fig.4) and max (Fig.5) latency in Redis"
    )
    sizes = sweep_sizes(profile)
    points = {
        (size, method): run_point(profile, size, method)
        for size in sizes
        for method in ("none", "default", "odf")
    }

    p99 = Table(
        "Figure 4 — 99%-ile latency (ms)",
        ["size GiB", "Normal", "Snapshot-ODF", "Snapshot-DEF"],
    )
    mx = Table(
        "Figure 5 — maximum latency (ms)",
        ["size GiB", "Normal", "Snapshot-ODF", "Snapshot-DEF"],
    )
    for size in sizes:
        normal = points[(size, "none")]
        odf = points[(size, "odf")]
        deflt = points[(size, "default")]
        # "Normal" = queries of an undisturbed run (no snapshot window).
        p99.add_row(size, normal.norm_p99_ms,
                    odf.snap_p99_ms, deflt.snap_p99_ms)
        mx.add_row(size, normal.norm_max_ms, odf.snap_max_ms,
                   deflt.snap_max_ms)
    report.add_table(p99)
    report.add_table(mx)

    big = max(sizes)
    odf_big = points[(big, "odf")]
    def_big = points[(big, "default")]
    report.comparisons.extend(
        [
            Comparison("DEF p99 @64GiB", PAPER_64G[("default", "p99")],
                       def_big.snap_p99_ms),
            Comparison("DEF max @64GiB", PAPER_64G[("default", "max")],
                       def_big.snap_max_ms),
            Comparison("ODF p99 @64GiB", PAPER_64G[("odf", "p99")],
                       odf_big.snap_p99_ms,
                       note="quick profile inflates (window compression)"),
            Comparison("ODF max @64GiB", PAPER_64G[("odf", "max")],
                       odf_big.snap_max_ms),
        ]
    )

    report.check(
        "snapshot-DEF >> snapshot-ODF at the largest size",
        def_big.snap_p99_ms > 3 * odf_big.snap_p99_ms,
    )
    report.check(
        "ODF removes most of DEF's tail at the largest size (>=80%)",
        odf_big.snap_p99_ms < 0.2 * def_big.snap_p99_ms,
    )
    report.check(
        "DEF snapshot p99 grows sharply with size (64GiB > 10x 1GiB)",
        points[(big, "default")].snap_p99_ms
        > 10 * points[(min(sizes), "default")].snap_p99_ms,
    )
    report.check(
        "normal-query p99 stays sub-millisecond across sizes",
        all(points[(s, "none")].norm_p99_ms < 1.0 for s in sizes),
    )
    return report
