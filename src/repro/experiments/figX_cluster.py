"""Figure 16 at cluster scale: snapshot scheduling across co-located shards.

The paper's production story (§7) is many IMKVS instances per machine,
where simultaneous fork-based snapshots turn one instance's latency
spike into a machine-wide incident.  This experiment shards one
dataset over a 4-shard :class:`~repro.cluster.cluster.SimCluster`
(shared clock, shared frame pool), drives one merged open-loop stream
through the cluster client, and sweeps fork mechanism x snapshot
scheduling policy:

* **default fork** — the fork call's page-table copy serializes
  machine-wide, so the simultaneous policy stacks four stalls
  back-to-back and cluster p99 suffers; staggering the BGSAVEs is a
  real operational mitigation.
* **ODF / Async-fork** — the fork call is (near-)constant, so the
  scheduling policy barely matters: the mechanism, not the schedule,
  removed the spike.  That insensitivity is the deployment-level
  payoff the paper claims.
"""

from __future__ import annotations

from repro.cluster.cluster import FORK_METHODS, SimCluster
from repro.cluster.coordinator import SnapshotCoordinator, make_policy
from repro.config import SimulationProfile
from repro.experiments.parallel import parallel_map
from repro.experiments.registry import register
from repro.metrics.latency import merge
from repro.metrics.report import ExperimentReport, Table
from repro.workload.cluster import (
    ClusterWorkloadSpec,
    build_cluster_workload,
    prepopulate,
    run_cluster_workload,
)

N_SHARDS = 4
POLICIES = ("simultaneous", "staggered", "dirty-pressure")
#: Snapshot rounds targeted over one run's duration.
ROUNDS = 5


def _spec_for(profile: SimulationProfile, seed: int) -> ClusterWorkloadSpec:
    count = min(40_000, max(6_000, profile.query_count // 50))
    return ClusterWorkloadSpec(
        count=count,
        n_keys=2 * count,
        rate_per_sec=float(profile.set_rate_per_sec),
        seed=seed,
    )


def _one_run(profile: SimulationProfile, method: str, policy_name: str,
             seed: int):
    spec = _spec_for(profile, seed)
    cluster = SimCluster(n_shards=N_SHARDS, method=method)
    workload = build_cluster_workload(spec)
    prepopulate(cluster, workload)
    duration = int(workload.arrivals_ns[-1])
    writes_per_shard = int(spec.count * spec.set_ratio) // N_SHARDS
    policy = make_policy(
        policy_name,
        period_ns=duration // ROUNDS,
        n_shards=N_SHARDS,
        dirty_threshold=max(1, writes_per_shard // ROUNDS),
    )
    coordinator = SnapshotCoordinator(cluster, policy)
    return run_cluster_workload(cluster, workload, coordinator=coordinator)


def _one_run_task(task):
    """``parallel_map`` adapter (module-level, picklable)."""
    return _one_run(*task)


@register("figx-cluster",
          "Cluster-scale Fig. 16: snapshot scheduling across shards")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Sweep fork method x scheduling policy on a 4-shard cluster."""
    report = ExperimentReport(
        "figx-cluster",
        "cluster-wide snapshot-query latency per scheduling policy",
    )
    table = Table(
        f"Cluster ({N_SHARDS} shards, shared machine) — "
        "cluster-wide and worst-shard latency",
        ["method", "policy", "p99 ms", "p99.9 ms",
         "worst shard p99 ms", "snapshots"],
    )
    # Every (method, policy, seed) cell is seeded independently, so the
    # grid fans out over the ``--jobs`` workers; ``parallel_map``
    # returns in grid order, keeping aggregation identical to serial.
    grid = [
        (profile, method, policy_name, seed)
        for method in FORK_METHODS
        for policy_name in POLICIES
        for seed in range(profile.repeats)
    ]
    by_cell: dict[tuple[str, str], list] = {}
    for (_, method, policy_name, _), result in zip(
        grid, parallel_map(_one_run_task, grid)
    ):
        by_cell.setdefault((method, policy_name), []).append(result)
    p99 = {}
    for method in FORK_METHODS:
        for policy_name in POLICIES:
            runs = by_cell[(method, policy_name)]
            cluster_sample = merge([r.merged for r in runs])
            shard_p99s = [
                merge([r.per_shard[sid] for r in runs]).p99_ms()
                for sid in range(N_SHARDS)
            ]
            snapshots = sum(
                sum(r.snapshots_completed.values()) for r in runs
            )
            p99[(method, policy_name)] = cluster_sample.p99_ms()
            table.add_row(
                method,
                policy_name,
                cluster_sample.p99_ms(),
                cluster_sample.p999_ns() / 1e6,
                max(shard_p99s),
                snapshots,
            )
    report.add_table(table)

    def spread(method: str) -> float:
        values = [p99[(method, policy)] for policy in POLICIES]
        return (max(values) - min(values)) / min(values)

    report.check(
        "staggered beats simultaneous on cluster p99 (default fork)",
        p99[("default", "staggered")] < p99[("default", "simultaneous")],
    )
    report.check(
        "Async-fork is insensitive to the scheduling policy (<10% spread)",
        spread("async") < 0.10,
    )
    report.check(
        "scheduling matters far more under the default fork",
        spread("default") > 2.0 * spread("async"),
    )
    report.check(
        "Async-fork under the worst schedule still beats default fork",
        p99[("async", "simultaneous")]
        < p99[("default", "simultaneous")],
    )
    return report
