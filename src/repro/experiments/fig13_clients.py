"""Figure 13: impact of the number of clients (8 GiB instance).

More clients at the same aggregate rate means burstier arrivals — more
requests land at the same time, so more PTEs are modified at once and one
interruption to the parent stretches longer.  Latency rises with the
client count for both methods and Async-fork stays ahead.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point
from repro.experiments.registry import register
from repro.metrics.report import ExperimentReport, Table

SIZE_GB = 8
CLIENT_COUNTS = (10, 50, 100, 500)


@register("fig13", "Latency vs number of clients (8GiB)")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Sweep the client count at a fixed 50k SET/s aggregate rate."""
    report = ExperimentReport(
        "fig13", "p99/max of snapshot queries vs client count"
    )
    table = Table(
        "Figure 13 — 8GiB instance, 50k SET/s",
        ["clients", "ODF p99", "Async p99", "ODF max", "Async max"],
    )
    points = {}
    for clients in CLIENT_COUNTS:
        odf = run_point(profile, SIZE_GB, "odf", clients=clients)
        asy = run_point(profile, SIZE_GB, "async", clients=clients)
        points[clients] = (odf, asy)
        table.add_row(
            clients, odf.snap_p99_ms, asy.snap_p99_ms,
            odf.snap_max_ms, asy.snap_max_ms,
        )
    report.add_table(table)

    report.check(
        "Async-fork p99 <= ODF p99 for every client count",
        all(asy.snap_p99_ms <= odf.snap_p99_ms
            for odf, asy in points.values()),
    )
    report.check(
        "Async-fork max latency rises with client count (burstiness)",
        points[500][1].snap_max_ms > points[10][1].snap_max_ms,
    )
    report.check(
        "ODF max latency rises with client count (burstiness)",
        points[500][0].snap_max_ms > points[10][0].snap_max_ms,
    )
    return report
