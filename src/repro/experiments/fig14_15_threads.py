"""Figures 14 & 15: the child's kernel copy threads.

Figure 14 compares Async-fork#1 (the child copies alone) and Async-fork#8
(7 extra kernel threads) against ODF across sizes: even single-threaded,
Async-fork wins (paper: max latency -34.3 % on average vs ODF), and more
threads shrink the copy window and with it the chance of a proactive
synchronization.  Figure 15 shows (a) the copy time falling near-linearly
with the thread count and (b) the corresponding 8 GiB latencies.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point, sweep_sizes
from repro.experiments.registry import register
from repro.kernel.costs import DEFAULT_COSTS
from repro.metrics.report import Comparison, ExperimentReport, Table
from repro.sim.compact import CompactInstance

THREAD_COUNTS = (1, 2, 4, 8)


@register("fig14-15", "Effect of the child's copy threads")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Async-fork#1 / #8 vs ODF, plus the copy-time scaling curve."""
    report = ExperimentReport(
        "fig14-15", "copy-thread count: latency and copy time"
    )
    sizes = sweep_sizes(profile)

    # Figure 14: latency across sizes for ODF / Async#1 / Async#8.
    fig14 = Table(
        "Figure 14 — p99 / max latency (ms)",
        ["size GiB", "ODF p99", "Async#1 p99", "Async#8 p99",
         "ODF max", "Async#1 max", "Async#8 max"],
    )
    points = {}
    for size in sizes:
        odf = run_point(profile, size, "odf")
        a1 = run_point(profile, size, "async", copy_threads=1)
        a8 = run_point(profile, size, "async", copy_threads=8)
        points[size] = (odf, a1, a8)
        fig14.add_row(
            size, odf.snap_p99_ms, a1.snap_p99_ms, a8.snap_p99_ms,
            odf.snap_max_ms, a1.snap_max_ms, a8.snap_max_ms,
        )
    report.add_table(fig14)

    # Figure 15(a): child copy time vs thread count (model curve).
    fig15a = Table(
        "Figure 15a — child PMD/PTE copy time (ms)",
        ["size GiB"] + [f"{t} thread(s)" for t in THREAD_COUNTS],
    )
    for size in sizes:
        counts = CompactInstance(size).level_counts()
        fig15a.add_row(
            size,
            *[DEFAULT_COSTS.child_copy_ns(counts, t) / 1e6
              for t in THREAD_COUNTS],
        )
    report.add_table(fig15a)

    # Figure 15(b): 8GiB latency vs thread count.
    fig15b = Table(
        "Figure 15b — 8GiB latency vs copy threads",
        ["threads", "p99 ms", "max ms", "syncs"],
    )
    by_threads = {}
    for threads in THREAD_COUNTS:
        point = run_point(profile, 8, "async", copy_threads=threads)
        by_threads[threads] = point
        fig15b.add_row(
            threads, point.snap_p99_ms, point.snap_max_ms,
            point.proactive_syncs,
        )
    report.add_table(fig15b)

    counts8 = CompactInstance(8).level_counts()
    copy1 = DEFAULT_COSTS.child_copy_ns(counts8, 1)
    copy8 = DEFAULT_COSTS.child_copy_ns(counts8, 8)
    report.comparisons.append(
        Comparison("8GiB copy time 1 thread", 72.0, copy1 / 1e6, "ms",
                   note="~2ms PMDs + ~70ms PTEs (§3.1)")
    )

    big = max(sizes)
    report.check(
        "Async-fork#1 still beats ODF on max latency at >=8GiB",
        all(points[s][1].snap_max_ms <= points[s][0].snap_max_ms
            for s in sizes if s >= 8),
    )
    report.check(
        "more copy threads -> fewer proactive syncs (8GiB)",
        by_threads[8].proactive_syncs <= by_threads[1].proactive_syncs,
    )
    report.check(
        "copy time scales near-linearly with threads (8x -> >6x)",
        copy1 / copy8 > 6.0,
    )
    report.check(
        "Async#8 p99 <= Async#1 p99 at the largest size",
        points[big][2].snap_p99_ms <= points[big][1].snap_p99_ms,
    )
    return report
