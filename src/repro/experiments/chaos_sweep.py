"""Chaos sweep: an open-loop workload under a seeded fault storm.

Every other experiment measures the *happy* path; this one exists to
prove the robustness claims.  For each seed it builds a
:class:`~repro.faults.plan.FaultPlan` storm across every injection
site, runs a write workload against an Async-fork engine supervised by
:class:`~repro.kvs.supervisor.SnapshotSupervisor`, reboots from the
(possibly corrupted) persistence artifacts, and then holds the run to
account:

* **every injected fault is classified** — surfaced to the client
  (partition, OOM, refused write), handled by the supervision layer
  (retry, watchdog kill, demotion), absorbed into latency (stall,
  RTT spike, short hang), or repaired at reboot (torn tail,
  generation fallback);
* **zero frame leaks** — after the engine's process exits, its
  allocator must be empty;
* **MMSAN + snapshot oracle on** — the runtime probes audit every
  fork, rollback, and completed copy (snapshot bytes are additionally
  compared byte-for-byte against the fork-point state);
* **bit-identical replay** — the same seed is run twice and the fault
  journal, final clock, and latency trace must match exactly.

One scripted seed drives the full degradation story on purpose:
async -> default fallback after consecutive §4.4 rollbacks, watchdog
kill of a hung child, MISCONF writes-refused after a disk-error burst,
then re-promotion — so the p99 cost of running degraded is always
measurable.
"""

from __future__ import annotations

import hashlib
import os

from repro.analysis import runtime
from repro.config import EngineConfig, SimulationProfile
from repro.core.async_fork import AsyncFork
from repro.errors import (
    NetworkPartitionError,
    OutOfMemoryError,
    WritesRefusedError,
)
from repro.experiments.registry import register
from repro.faults import (
    SITE_AOF_BYTES,
    SITE_CHILD_COPY,
    SITE_DISK_WRITE,
    SITE_RDB_BYTES,
    FaultPlan,
    FaultSpec,
    corrupt_aof_bytes,
    corrupt_snapshot,
)
from repro.kvs import aof as aof_mod
from repro.kvs import rdb, recovery
from repro.kvs.engine import KvEngine
from repro.kvs.supervisor import MODE_FALLBACK, SnapshotSupervisor
from repro.metrics.latency import percentile
from repro.metrics.report import ExperimentReport, Table
from repro.sim.network import NetworkLink
from repro.units import ns_to_ms, us

#: The seed whose plan is scripted (not a storm) so the sweep always
#: exercises fallback, watchdog, refusal, and re-promotion.
SCRIPTED_SEED = 0

#: Snapshot generations retained for the reboot phase.
GENERATIONS = 3


def _plan_for(seed: int, faults: int) -> FaultPlan:
    """The fault plan for one seed — scripted for ``SCRIPTED_SEED``."""
    if seed != SCRIPTED_SEED:
        return FaultPlan.storm(seed, faults=faults)
    plan = FaultPlan(seed)
    # Save 1: two consecutive child-copy kills -> demote to default
    # fork; the fallback attempt succeeds -> promote back.
    plan.add(FaultSpec(site=SITE_CHILD_COPY, kind="sigkill"))
    plan.add(FaultSpec(site=SITE_CHILD_COPY, kind="sigkill"))
    # Save 2: the child hangs far past the watchdog budget.
    plan.add(
        FaultSpec(
            site=SITE_CHILD_COPY, kind="hang", after=2, magnitude=1 << 20
        )
    )
    # Save 3: a disk-error burst long enough to exhaust every retry ->
    # MISCONF writes-refused until save 4 succeeds.
    plan.add(
        FaultSpec(site=SITE_DISK_WRITE, kind="io-error", after=2, count=4)
    )
    # Reboot: corrupt the newest snapshot generation and tear the AOF.
    plan.add(FaultSpec(site=SITE_RDB_BYTES, kind="bitrot", magnitude=2))
    plan.add(FaultSpec(site=SITE_AOF_BYTES, kind="torn-tail", magnitude=2))
    return plan


def _run_seed(seed: int, ops: int, faults: int, save_every: int) -> dict:
    """One complete chaos run; returns the evidence for the oracle."""
    plan = _plan_for(seed, faults)
    engine = KvEngine(
        fork_engine=AsyncFork(),
        config=EngineConfig(aof_enabled=True, value_size=256),
        name=f"chaos-{seed}",
    )
    link = NetworkLink(fault_plan=plan)
    surfaced = {"partition": 0, "oom": 0, "writes-refused": 0}

    def interleave(step: int) -> None:
        # Parent writes racing the child's copy: the proactive-sync
        # path the snapshot oracle exists to check.
        if step % 3 == 0:
            try:
                engine.set(f"hot{step % 7}".encode(), bytes(64))
            except OutOfMemoryError:
                surfaced["oom"] += 1
            except WritesRefusedError:
                surfaced["writes-refused"] += 1

    supervisor = SnapshotSupervisor(
        engine,
        watchdog_steps=512,
        fallback_after=2,
        plan=plan,
        on_child_step=interleave,
    )
    # A resident dataset so forks have page tables worth copying.
    for i in range(80):
        engine.set(f"base{i}".encode(), bytes(engine.config.value_size))
    engine.attach_fault_plan(plan)

    latencies: list[int] = []
    save_latency_by_mode: dict[str, list[int]] = {"async": [], "fallback": []}
    generations: list[rdb.SnapshotFile] = []
    byte_mismatches = 0
    clock = engine.clock
    interval_ns = us(20)  # 50k ops/s open loop

    for op in range(ops):
        op_ns = us(2)
        try:
            op_ns += link.round_trip_ns(payload=engine.config.value_size)
        except NetworkPartitionError:
            surfaced["partition"] += 1
            clock.advance(interval_ns)
            latencies.append(op_ns)
            continue
        try:
            engine.set(f"k{op % 200}".encode(), bytes(128 + op % 64))
        except OutOfMemoryError:
            surfaced["oom"] += 1
        except WritesRefusedError:
            surfaced["writes-refused"] += 1
        if op % save_every == save_every - 1:
            expected = rdb.dump(
                engine.store.items_from(engine.process.mm)
            ).payload
            retries_before = supervisor.counters.retries
            promotions_before = supervisor.counters.promotions
            report = supervisor.save()
            # A demotion can happen mid-save, so the successful attempt
            # ran on the fallback engine whenever the save either ended
            # degraded or re-promoted on its way out.
            mode = (
                "fallback"
                if supervisor.mode == MODE_FALLBACK
                or supervisor.counters.promotions > promotions_before
                else "async"
            )
            if report is not None:
                if supervisor.counters.retries == retries_before:
                    # No refork happened, so the fork point is exactly
                    # the state at the call: bytes must match.
                    if report.file.payload != expected:
                        byte_mismatches += 1
                generations.insert(0, report.file)
                del generations[GENERATIONS:]
                op_ns += report.fork_call_ns
                save_latency_by_mode[mode].append(report.fork_call_ns)
        if op == ops // 2 and not engine.aof.rewriting:
            supervisor.rewrite()
        if op % 25 == 24:
            supervisor.fsync()
        clock.advance(interval_ns)
        latencies.append(op_ns)

    # One final supervised save so the reboot phase has a fresh
    # generation even under late storms.
    final = supervisor.save()
    if final is not None:
        generations.insert(0, final.file)
        del generations[GENERATIONS:]

    # -- reboot phase: damage the artifacts, then recover ---------------
    ledger = supervisor.ledger()
    reboot = {"generation_fallbacks": 0, "torn_repairs": 0}
    recovered_ok = True
    if generations:
        snaps = list(generations)
        spec = plan.fire(SITE_RDB_BYTES, stage="reboot")
        if spec is not None:
            snaps[0] = corrupt_snapshot(snaps[0], spec, plan.rng)
        booted = recovery.recover(snapshots=snaps)
        reboot["generation_fallbacks"] = (
            booted.last_recovery.generations_skipped
        )
        recovered_ok &= len(booted.store) > 0
        booted.process.exit()
    aof_data = aof_mod.encode(engine.aof)
    spec = plan.fire(SITE_AOF_BYTES, stage="reboot")
    if spec is not None:
        aof_data = corrupt_aof_bytes(aof_data, spec, plan.rng)
    booted = recovery.recover(aof_bytes=aof_data)
    if booted.last_recovery.aof_bytes_dropped:
        reboot["torn_repairs"] = 1
    recovered_ok &= len(booted.store) > 0
    booted.process.exit()

    # -- teardown + leak check ------------------------------------------
    ledger = supervisor.ledger()
    engine.attach_fault_plan(None)
    engine.process.exit()
    leaked = engine.frames.allocated

    return {
        "plan": plan,
        "ledger": ledger,
        "surfaced": surfaced,
        "reboot": reboot,
        "latencies": latencies,
        "save_latency_by_mode": save_latency_by_mode,
        "byte_mismatches": byte_mismatches,
        "leaked": leaked,
        "recovered_ok": recovered_ok,
        "final_clock": clock.now,
        "trace_digest": hashlib.blake2b(
            ",".join(map(str, latencies)).encode(), digest_size=16
        ).hexdigest(),
    }


def _classify(run: dict) -> tuple[int, int, bool]:
    """Match every injected fault to its observed outcome.

    Returns ``(events, classified, exact)`` where ``exact`` means every
    per-kind tally reconciled.
    """
    events: dict[str, int] = {}
    for event in run["plan"].events:
        events[event.kind] = events.get(event.kind, 0) + 1
    jf = run["ledger"].job_failures
    surfaced = run["surfaced"]
    fork_oom = sum(
        jf.get(r, 0) for r in ("parent-copy", "child-copy", "proactive-sync")
    )
    watchdog = jf.get("watchdog-timeout", 0)
    tallies = {
        "oom": surfaced["oom"] + fork_oom,
        "partition": surfaced["partition"],
        "sigkill": jf.get("injected:sigkill", 0),
        "io-error": jf.get("disk-write", 0),
        "fsync-error": jf.get("fsync", 0),
        "bitrot": run["reboot"]["generation_fallbacks"],
        "truncate": run["reboot"]["generation_fallbacks"],
        "torn-tail": events.get("torn-tail", 0) if run["recovered_ok"] else 0,
        # Absorbed kinds: the run completed with the magnitude soaked
        # into latency; a long hang instead shows up as a watchdog kill.
        "stall": events.get("stall", 0),
        "rtt-spike": events.get("rtt-spike", 0),
        "hang": events.get("hang", 0),
    }
    exact = True
    classified = 0
    for kind, count in events.items():
        if kind in ("bitrot", "truncate"):
            got = run["reboot"]["generation_fallbacks"]
        else:
            got = tallies.get(kind, 0)
        classified += min(count, got)
        if got != count:
            exact = False
    if events.get("hang", 0) < watchdog:
        exact = False
    total = sum(events.values())
    return total, classified, exact


def _checkers_enabled():
    """Turn the MMSAN/oracle runtime probes on for the sweep's duration."""

    class _Ctx:
        def __enter__(self):
            self.was_on = runtime.enabled()
            if not self.was_on:
                os.environ[runtime.ENV_FLAG] = "1"
            runtime.activate()
            return self

        def __exit__(self, *exc):
            if not self.was_on:
                os.environ.pop(runtime.ENV_FLAG, None)
                runtime.deactivate()
            return False

    return _Ctx()


@register("chaos", "Fault storm: recovery, degradation, and replay")
def run(profile: SimulationProfile) -> ExperimentReport:
    """N-seed chaos sweep with MMSAN + snapshot oracle enabled."""
    report = ExperimentReport(
        "chaos",
        "open-loop workload under seeded fault storms; every fault "
        "must be recovered or surfaced, with zero leaks and "
        "bit-identical replay",
    )
    seeds = {"full": 40, "quick": 20}.get(profile.name, 4)
    ops = {"full": 400, "quick": 240}.get(profile.name, 120)
    faults = 8
    save_every = max(30, ops // 5)

    totals = {"events": 0, "classified": 0}
    all_exact = True
    leaked_frames = 0
    mismatches = 0
    replay_identical = True
    fallbacks = promotions = watchdogs = refusals = 0
    recovered_all = True
    latencies_all: list[int] = []
    saves_async: list[int] = []
    saves_fallback: list[int] = []
    fault_rows: dict[str, int] = {}

    with _checkers_enabled():
        for seed in range(seeds):
            run1 = _run_seed(seed, ops, faults, save_every)
            run2 = _run_seed(seed, ops, faults, save_every)
            replay_identical &= (
                run1["plan"].fingerprint() == run2["plan"].fingerprint()
                and run1["final_clock"] == run2["final_clock"]
                and run1["trace_digest"] == run2["trace_digest"]
            )
            total, classified, exact = _classify(run1)
            totals["events"] += total
            totals["classified"] += classified
            all_exact &= exact
            leaked_frames += run1["leaked"] + run2["leaked"]
            mismatches += run1["byte_mismatches"]
            recovered_all &= run1["recovered_ok"]
            ledger = run1["ledger"]
            fallbacks += ledger.fallbacks
            promotions += ledger.promotions
            watchdogs += ledger.watchdog_kills
            refusals += ledger.refusal_episodes
            latencies_all.extend(run1["latencies"])
            saves_async.extend(run1["save_latency_by_mode"]["async"])
            saves_fallback.extend(run1["save_latency_by_mode"]["fallback"])
            for site, count in ledger.faults_by_site.items():
                fault_rows[site] = fault_rows.get(site, 0) + count

    storm = Table(
        "Chaos sweep — injected faults by site "
        f"({seeds} seeds x {ops} ops, replayed twice)",
        ["site", "faults"],
    )
    for site in sorted(fault_rows):
        storm.add_row(site, fault_rows[site])
    storm.add_row("total", totals["events"])
    report.add_table(storm)

    outcome = Table(
        "Supervision outcomes",
        ["counter", "value"],
    )
    outcome.add_row("classified faults", totals["classified"])
    outcome.add_row("async->default fallbacks", fallbacks)
    outcome.add_row("re-promotions", promotions)
    outcome.add_row("watchdog kills", watchdogs)
    outcome.add_row("writes-refused episodes", refusals)
    outcome.add_row("leaked frames", leaked_frames)
    report.add_table(outcome)

    cost = Table(
        "p99 latency cost of degradation (snapshot fork call, ms)",
        ["mode", "saves", "p50", "p99"],
    )
    for mode, samples in (
        ("async", saves_async),
        ("fallback (default fork)", saves_fallback),
    ):
        if samples:
            cost.add_row(
                mode,
                len(samples),
                ns_to_ms(percentile(samples, 50)),
                ns_to_ms(percentile(samples, 99)),
            )
    report.add_table(cost)

    report.check(
        "every injected fault recovered or surfaced",
        totals["classified"] == totals["events"] and all_exact,
    )
    report.check("zero frame leaks after teardown", leaked_frames == 0)
    report.check(
        "snapshot bytes equal fork-point fingerprint", mismatches == 0
    )
    report.check("reboot recovered a dataset in every run", recovered_all)
    report.check("replay from the same seed is bit-identical", replay_identical)
    report.check(
        "degradation story exercised (fallback + promotion + watchdog "
        "+ refusal)",
        fallbacks >= 1
        and promotions >= 1
        and watchdogs >= 1
        and refusals >= 1,
    )
    report.check(
        "fallback snapshots cost more than async at p99",
        bool(saves_fallback)
        and bool(saves_async)
        and percentile(saves_fallback, 99) > percentile(saves_async, 99),
    )
    return report
