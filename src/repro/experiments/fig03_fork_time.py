"""Figure 3: execution time of the default ``fork`` vs instance size, and
the share of that time spent copying the page table.

The paper finds the call grows roughly linearly from <10 ms (1 GiB) to
>600 ms (64 GiB), with the page-table copy at 97-99.93 % of it; on the
8 GiB instance the 2^12 PMD entries cost ~2 ms and the 2^21 PTEs ~70 ms.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.registry import register
from repro.kernel.costs import DEFAULT_COSTS
from repro.metrics.report import Comparison, ExperimentReport, Table
from repro.sim.compact import CompactInstance


@register("fig3", "Default fork execution time and page-table-copy share")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Compute the calibrated fork cost across the size sweep."""
    report = ExperimentReport(
        "fig3",
        "default fork() time vs instance size; page-table copy share",
    )
    table = Table(
        "Figure 3 — default fork()",
        ["size GiB", "fork ms", "copy ms", "copy share %"],
    )
    costs = DEFAULT_COSTS
    fork_ms: dict[int, float] = {}
    share: dict[int, float] = {}
    for size in profile.sizes_gb:
        counts = CompactInstance(size).level_counts()
        total = costs.default_fork_ns(counts)
        copy = costs.page_table_copy_ns(counts)
        fork_ms[size] = total / 1e6
        share[size] = copy / total * 100.0
        table.add_row(size, total / 1e6, copy / 1e6, share[size])
    report.add_table(table)

    smallest, largest = min(fork_ms), max(fork_ms)
    report.comparisons.extend(
        [
            Comparison("1GiB fork", 10.0, fork_ms[smallest], "ms",
                       "paper: <10ms"),
            Comparison("64GiB fork", 600.0, fork_ms[largest], "ms",
                       "paper: >600ms"),
            Comparison("64GiB copy share", 99.93, share[largest], "%"),
        ]
    )
    report.check("fork time grows monotonically with size",
                 all(fork_ms[a] < fork_ms[b]
                     for a, b in zip(sorted(fork_ms), sorted(fork_ms)[1:])))
    report.check("1GiB fork under 10ms", fork_ms[smallest] < 10.0)
    report.check("64GiB fork over 500ms", fork_ms[largest] > 500.0)
    report.check("copy dominates (>97% everywhere)",
                 all(v > 97.0 for v in share.values()))

    # §3.1 anatomy of the 8GiB instance.
    counts8 = CompactInstance(8).level_counts()
    anatomy = Table(
        "§3.1 — 8GiB page-table anatomy",
        ["level", "present entries", "paper"],
    )
    anatomy.add_row("pgd", counts8["pgd"], 1)
    anatomy.add_row("pud", counts8["pud"], 8)
    anatomy.add_row("pmd", counts8["pmd"], 2**12)
    anatomy.add_row("pte", counts8["pte"], 2**21)
    report.add_table(anatomy)
    report.check(
        "8GiB anatomy matches §3.1",
        counts8
        == {"pgd": 1, "pud": 8, "pmd": 2**12, "pte": 2**21},
    )
    return report
