"""Figure 22 (Appendix C): how fast the parent returns from the fork call.

Both Async-fork and ODF remove the dominant page-table copy from the call;
at 64 GiB the paper measures 0.61 ms (Async-fork) vs 1.1 ms (ODF) — ODF is
slightly slower because it initializes per-table sharing counters, whereas
Async-fork only flips the PMD R/W bits.

This experiment validates the cost model against the *functional* engines
too: it builds a small real instance, forks it with each engine, and
checks the simulated-clock durations ordering.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.core.async_fork import AsyncFork
from repro.experiments.registry import register
from repro.kernel.costs import DEFAULT_COSTS
from repro.kernel.forks.default import DefaultFork
from repro.kernel.forks.odf import OnDemandFork
from repro.kernel.task import Process
from repro.mem.frames import FrameAllocator
from repro.metrics.report import Comparison, ExperimentReport, Table
from repro.sim.compact import CompactInstance
from repro.units import MIB


@register("fig22", "Fork-call return time: Async-fork vs ODF")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Model-level sweep + functional cross-check on a small instance."""
    report = ExperimentReport(
        "fig22", "time until the parent returns from the fork call"
    )
    table = Table(
        "Figure 22 — fork call duration (ms)",
        ["size GiB", "Async-fork", "ODF", "default (Fig.3)"],
    )
    costs = DEFAULT_COSTS
    values = {}
    for size in profile.sizes_gb:
        counts = CompactInstance(size).level_counts()
        asy = costs.async_fork_ns(counts) / 1e6
        odf = costs.odf_fork_ns(counts) / 1e6
        dflt = costs.default_fork_ns(counts) / 1e6
        values[size] = (asy, odf, dflt)
        table.add_row(size, asy, odf, dflt)
    report.add_table(table)

    big = max(profile.sizes_gb)
    report.comparisons.extend(
        [
            Comparison("Async-fork call @64GiB", 0.61, values[big][0]),
            Comparison("ODF call @64GiB", 1.1, values[big][1]),
        ]
    )
    report.check(
        "Async-fork call faster than ODF call at every size",
        all(asy < odf for asy, odf, _ in values.values()),
    )
    report.check(
        "both are orders of magnitude below the default fork at 64GiB",
        values[big][0] < 0.01 * values[big][2]
        and values[big][1] < 0.01 * values[big][2],
    )

    # Functional cross-check on a 32 MiB instance: same ordering.
    durations = {}
    for name, engine_cls in (
        ("async", AsyncFork),
        ("odf", OnDemandFork),
        ("default", DefaultFork),
    ):
        frames = FrameAllocator()
        parent = Process(frames, name="fig22")
        vma = parent.mm.mmap(32 * MIB)
        step = 4096
        for offset in range(0, 32 * MIB, step):
            parent.mm.write_memory(vma.start + offset, b"x")
        engine = engine_cls()
        result = engine.fork(parent)
        durations[name] = result.stats.parent_call_ns
        session = result.session
        if session is not None and hasattr(session, "run_to_completion"):
            session.run_to_completion()
    func = Table(
        "functional engines, 32MiB instance (simulated clock)",
        ["engine", "parent call (us)"],
    )
    for name, ns in durations.items():
        func.add_row(name, ns / 1e3)
    report.add_table(func)
    report.check(
        "functional tier reproduces the ordering async < odf < default",
        durations["async"] < durations["odf"] < durations["default"],
    )
    return report
