"""Live resharding under each fork engine (extension figure).

The cluster-operations question the paper's standalone figures leave
open: what happens to tail latency when the two background machines
collide — a live reshard (25% of the slot space draining to new
owners, clients chasing keys through ASK/MOVED) *and* a fork-based
snapshot round landing in the middle of it?

Per fork method, the run drains shard 0's 4096 slots (one of four =
25% of the key space) while the open-loop stream keeps reading and
writing, and fires an all-shard BGSAVE round mid-migration.  Every
read is checked against a read-your-writes oracle; the reported p99 is
split three ways: before the migration window (baseline), inside it,
and after.  The expected shape is the paper's story restated at the
cluster level: migration alone costs little (ODF/Async-fork stay near
baseline through the window), but the default fork's page-table copy
serializes the machine mid-reshard, and the spike lingers long after
the window because the backlog it created has to drain.

Fork-call costs are inflated to an emulated 8 GiB instance (2 GiB per
shard) through the same ``WireCostModel`` the wire server uses, so the
default fork's stall sits at the paper's Figure 3 magnitude while
per-event ODF/Async-fork costs stay physical.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cluster.cluster import FORK_METHODS, SimCluster
from repro.cluster.slots import NUM_SLOTS
from repro.config import SimulationProfile
from repro.experiments.parallel import parallel_map
from repro.experiments.registry import register
from repro.metrics.latency import percentile
from repro.metrics.report import ExperimentReport, Table
from repro.net.app import emulation_costs
from repro.units import PAGES_PER_GIB
from repro.workload.cluster import (
    ClusterWorkloadSpec,
    build_cluster_workload,
)
from repro.workload.reshard import (
    ReshardSpec,
    prepopulate_versioned,
    run_reshard_workload,
)

N_SHARDS = 4
#: Emulated instance size across the cluster (the paper's 8 GiB knob).
SIM_SIZE_GB = 8.0
#: One migrator tick every this many served queries.
TICK_STRIDE = 16


def _spec_for(profile: SimulationProfile, seed: int) -> ClusterWorkloadSpec:
    count = min(20_000, max(2_000, profile.query_count // 60))
    # Small values keep the resident set tiny; the emulated instance
    # size, not the resident byte count, decides the fork cost.
    return ClusterWorkloadSpec(
        count=count,
        n_keys=count,
        rate_per_sec=float(profile.set_rate_per_sec),
        value_size=512,
        seed=seed,
    )


def _reshard_run(profile: SimulationProfile, method: str, seed: int) -> dict:
    spec = _spec_for(profile, seed)
    workload = build_cluster_workload(spec)
    cluster = SimCluster(n_shards=N_SHARDS, method=method)
    expected = prepopulate_versioned(cluster, workload)
    target_pages = int(SIM_SIZE_GB * PAGES_PER_GIB / N_SHARDS)
    for shard in cluster.shards:
        resident = max(1, shard.engine.process.mm.rss)
        shard.engine.fork_engine.costs = emulation_costs(
            shard.engine.fork_engine.costs,
            max(1.0, target_pages / resident),
        )
    reshard = ReshardSpec(tick_stride=TICK_STRIDE)
    # Fire the BGSAVE round mid-drain.  The window's *length* is set by
    # the tick budget (>= 4096/slots_per_tick ticks, one per stride),
    # not by the query count, so anchor to the window start — count//2
    # would fall past the window once count outgrows the drain.
    min_window = (NUM_SLOTS // N_SHARDS // reshard.slots_per_tick) * TICK_STRIDE
    snapshot_at = int(spec.count * reshard.start_fraction) + min_window // 2
    result = run_reshard_workload(
        cluster,
        workload,
        reshard,
        expected=expected,
        snapshot_rounds=(snapshot_at,),
    )
    inside, _ = result.split_by_window()
    lo, hi = result.window
    baseline = result.latencies[:lo]
    post = result.latencies[hi:]
    digest = hashlib.blake2b(
        b"|".join(
            [
                result.latencies.tobytes(),
                str(result.window).encode(),
                str(result.stats.slots_finalized).encode(),
                str(result.stats.keys_moved).encode(),
                str(result.stats.bytes_shipped).encode(),
                str(result.ask_redirects).encode(),
                str(result.moved_redirects).encode(),
            ]
        ),
        digest_size=16,
    ).hexdigest()
    return {
        "method": method,
        "seed": seed,
        "p99_base_ms": percentile(baseline, 99.0) / 1e6,
        "p99_in_ms": percentile(inside, 99.0) / 1e6,
        "p99_post_ms": percentile(post, 99.0) / 1e6,
        "window": result.window,
        "snapshot_at": snapshot_at,
        "count": spec.count,
        "slots_finalized": result.stats.slots_finalized,
        "keys_moved": result.stats.keys_moved,
        "reads_checked": result.reads_checked,
        "lost": result.lost_reads,
        "stale": result.stale_reads,
        "ask": result.ask_redirects,
        "moved": result.moved_redirects,
        "refreshes": result.slot_cache_refreshes,
        "snapshots": sum(result.snapshots_completed.values()),
        "digest": digest,
    }


def _reshard_task(task):
    """Run one cell twice; report whether the replay matched bit-for-bit."""
    outcome = _reshard_run(*task)
    replay = _reshard_run(*task)
    return outcome, outcome["digest"] == replay["digest"]


@register(
    "figx-reshard",
    "Live reshard: migrate 25% of slots mid-workload under each engine",
)
def run(profile: SimulationProfile) -> ExperimentReport:
    """Drain one shard live, snapshot mid-drain, split p99 by window."""
    report = ExperimentReport(
        "figx-reshard",
        "p99 before/during/after a live 25%-slot migration with a "
        "mid-window BGSAVE round, per fork engine",
    )
    table = Table(
        "Live reshard with a mid-window snapshot round (p99 by phase)",
        ["method", "seed", "p99 base ms", "p99 reshard ms", "p99 after ms",
         "keys moved", "ASK", "MOVED", "lost", "stale"],
    )
    grid = [
        (profile, method, seed)
        for method in FORK_METHODS
        for seed in range(profile.repeats)
    ]
    runs: list[dict] = []
    replay_identical = True
    for outcome, replayed_ok in parallel_map(_reshard_task, grid):
        replay_identical &= replayed_ok
        runs.append(outcome)
        table.add_row(
            outcome["method"],
            outcome["seed"],
            outcome["p99_base_ms"],
            outcome["p99_in_ms"],
            outcome["p99_post_ms"],
            outcome["keys_moved"],
            outcome["ask"],
            outcome["moved"],
            outcome["lost"],
            outcome["stale"],
        )
    report.add_table(table)

    by_method: dict[str, list[dict]] = {}
    for outcome in runs:
        by_method.setdefault(outcome["method"], []).append(outcome)
    worst_in = {
        method: max(o["p99_in_ms"] for o in outs)
        for method, outs in by_method.items()
    }
    report.check(
        "every run drained all 4096 slots before the stream ended",
        all(
            o["slots_finalized"] == NUM_SLOTS // N_SHARDS
            and o["window"][1] < o["count"]
            for o in runs
        ),
    )
    report.check(
        "zero lost and zero stale reads across every engine and seed",
        all(o["lost"] == 0 and o["stale"] == 0 for o in runs),
    )
    report.check(
        "clients chased moving keys through ASK during the drain",
        all(o["ask"] > 0 for o in runs),
    )
    report.check(
        "the snapshot round landed inside the migration window",
        all(
            o["window"][0] <= o["snapshot_at"] < o["window"][1]
            for o in runs
        ),
    )
    report.check(
        "the mid-window snapshot round completed on every shard",
        all(o["snapshots"] == N_SHARDS for o in runs),
    )
    report.check(
        "the default fork spikes during the reshard window (>20x baseline)",
        all(
            o["p99_in_ms"] > 20.0 * max(o["p99_base_ms"], 1e-9)
            for o in by_method["default"]
        ),
    )
    report.check(
        "ODF and Async-fork stay near baseline through the window",
        all(
            o["p99_in_ms"] < 10.0 * max(o["p99_base_ms"], 1e-9)
            for method in ("odf", "async")
            for o in by_method[method]
        ),
    )
    report.check(
        "Async-fork's window p99 is at least 10x below the default fork's",
        worst_in["async"] < 0.1 * worst_in["default"]
        and worst_in["odf"] < 0.1 * worst_in["default"],
    )
    report.check(
        "runs replay byte-identically from their seeds",
        replay_identical,
    )
    return report
