"""Shared machinery for the experiment runners.

Figures reuse each other's runs (Figures 9/10/11/19/20 all analyse the
same sweep), so :func:`run_point` memoizes a compact
:class:`PointSummary` per parameter set — percentiles, interruption
counts, throughput series — instead of re-simulating or holding the raw
per-query arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import SimulationProfile
from repro.metrics.throughput import ThroughputSeries
from repro.sim.disk import DiskModel
from repro.sim.network import PRODUCTION_ENVIRONMENT
from repro.sim.snapshot_sim import (
    SnapshotSimConfig,
    SnapshotSimResult,
    simulate_snapshot,
)
from repro.workload.generators import (
    memtier_workload,
    redis_benchmark_workload,
)

#: Open-loop rate for the multi-threaded KeyDB runs; the single 50 k SET/s
#: stream of the Redis experiments would leave its four threads idle
#: (KeyDB's throughput is reported higher than Redis's in Figs. 17-19).
KEYDB_RATE = 150_000
KEYDB_THREADS = 4


@dataclass
class PointSummary:
    """Averaged metrics of one (size, method, engine, workload) point."""

    size_gb: float
    method: str
    engine: str
    repeats: int
    snap_p99_ms: float
    snap_max_ms: float
    norm_p99_ms: float
    norm_max_ms: float
    fork_ms: float
    child_copy_ms: float
    proactive_syncs: float
    table_faults: float
    data_cow: float
    min_qps: float
    oos_ms: float
    bcc_hist: dict[tuple[int, int], float]
    snapshot_window_s: float
    #: Throughput series of the first repeat (for the timeline figures).
    throughput: Optional[ThroughputSeries] = None
    snapshot_start_ns: float = 0.0
    snapshot_end_ns: float = 0.0
    extras: dict = field(default_factory=dict)


_CACHE: dict[tuple, PointSummary] = {}


def clear_cache() -> None:
    """Drop memoized points (tests use this for isolation)."""
    _CACHE.clear()


def run_point(
    profile: SimulationProfile,
    size_gb: float,
    method: str,
    engine: str = "redis",
    ratio: str = "set-only",
    pattern: str = "uniform",
    clients: int = 50,
    copy_threads: int = 8,
    aof: bool = False,
    rewrite: bool = False,
    production: bool = False,
    rate_per_sec: Optional[int] = None,
    keep_throughput: bool = False,
    keep_trace: bool = False,
) -> PointSummary:
    """Simulate one experiment point (memoized, averaged over repeats)."""
    key = (
        profile.name,
        profile.query_count,
        size_gb,
        method,
        engine,
        ratio,
        pattern,
        clients,
        copy_threads,
        aof,
        rewrite,
        production,
        rate_per_sec,
    )
    cached = _CACHE.get(key)
    if cached is not None:
        missing_throughput = keep_throughput and cached.throughput is None
        missing_trace = keep_trace and "trace" not in cached.extras
        if not (missing_throughput or missing_trace):
            return cached
        # fall through and recompute with the requested artifacts kept

    if rate_per_sec is None:
        rate_per_sec = (
            KEYDB_RATE if engine == "keydb" else profile.set_rate_per_sec
        )
    engine_threads = KEYDB_THREADS if engine == "keydb" else 1
    disk = DiskModel(speedup=profile.persist_speedup)
    environment = PRODUCTION_ENVIRONMENT if production else None

    results: list[SnapshotSimResult] = []
    for repeat in range(profile.repeats):
        seed = 1000 + repeat
        if ratio == "set-only":
            workload = redis_benchmark_workload(
                profile.query_count,
                size_gb,
                rate_per_sec=rate_per_sec,
                clients=clients,
                seed=seed,
            )
        else:
            workload = memtier_workload(
                profile.query_count,
                size_gb,
                ratio=ratio,
                pattern=pattern,
                rate_per_sec=rate_per_sec,
                clients=clients,
                seed=seed,
            )
        config = SnapshotSimConfig(
            size_gb=size_gb,
            method=method,
            workload=workload,
            copy_threads=copy_threads,
            engine_threads=engine_threads,
            disk=disk,
            aof=aof,
            rewrite=rewrite,
            environment=environment,
            seed=seed * 7 + 1,
        )
        results.append(simulate_snapshot(config))

    summary = _summarize(
        results, size_gb, method, engine, keep_throughput
    )
    if keep_trace:
        # The first repeat's span trace (one per run; keeping every
        # repeat would multiply memory for no analytical gain).
        summary.extras["trace"] = results[0].trace
    _CACHE[key] = summary
    return summary


def _summarize(
    results: list[SnapshotSimResult],
    size_gb: float,
    method: str,
    engine: str,
    keep_throughput: bool,
) -> PointSummary:
    def mean(values) -> float:
        return float(np.mean(values))

    snaps = [r.snapshot_queries() for r in results]
    norms = [r.normal_queries() for r in results]
    hist: dict[tuple[int, int], float] = {}
    for r in results:
        for bucket, count in r.interrupts.bcc_histogram().items():
            hist[bucket] = hist.get(bucket, 0.0) + count / len(results)
    first = results[0]
    return PointSummary(
        size_gb=size_gb,
        method=method,
        engine=engine,
        repeats=len(results),
        snap_p99_ms=mean([s.p99_ms() for s in snaps]),
        snap_max_ms=mean([s.max_ms() for s in snaps]),
        norm_p99_ms=mean([s.p99_ms() for s in norms]),
        norm_max_ms=mean([s.max_ms() for s in norms]),
        fork_ms=mean([r.fork_call_ns for r in results]) / 1e6,
        child_copy_ms=mean([r.child_copy_ns for r in results]) / 1e6,
        proactive_syncs=mean(
            [r.counts["proactive_syncs"] for r in results]
        ),
        table_faults=mean([r.counts["table_faults"] for r in results]),
        data_cow=mean([r.counts["data_cow"] for r in results]),
        min_qps=mean([r.min_snapshot_qps() for r in results]),
        oos_ms=mean([r.out_of_service_ns() for r in results]) / 1e6,
        bcc_hist=hist,
        snapshot_window_s=mean(
            [
                (r.snapshot_end_ns - r.snapshot_start_ns) / 1e9
                for r in results
            ]
        ),
        throughput=first.throughput() if keep_throughput else None,
        snapshot_start_ns=first.snapshot_start_ns,
        snapshot_end_ns=first.snapshot_end_ns,
    )


def sweep_sizes(profile: SimulationProfile) -> tuple[int, ...]:
    """Instance sizes for the full-sweep figures."""
    return profile.sizes_gb


def reduction(baseline: float, improved: float) -> float:
    """Percentage reduction, as the paper quotes (positive = better)."""
    if baseline == 0:
        return float("nan")
    return (baseline - improved) / baseline * 100.0
