"""Shared machinery for the experiment runners.

Figures reuse each other's runs (Figures 9/10/11/19/20 all analyse the
same sweep), so :func:`run_point` memoizes a compact
:class:`PointSummary` per parameter set — percentiles, interruption
counts, throughput series — instead of re-simulating or holding the raw
per-query arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import SimulationProfile
from repro.metrics.throughput import ThroughputSeries
from repro.sim.disk import DiskModel
from repro.sim.network import PRODUCTION_ENVIRONMENT
from repro.sim.snapshot_sim import (
    SnapshotSimConfig,
    SnapshotSimResult,
    simulate_snapshot,
)
from repro.workload.generators import (
    memtier_workload,
    redis_benchmark_workload,
)

#: Open-loop rate for the multi-threaded KeyDB runs; the single 50 k SET/s
#: stream of the Redis experiments would leave its four threads idle
#: (KeyDB's throughput is reported higher than Redis's in Figs. 17-19).
KEYDB_RATE = 150_000
KEYDB_THREADS = 4


@dataclass
class PointSummary:
    """Averaged metrics of one (size, method, engine, workload) point."""

    size_gb: float
    method: str
    engine: str
    repeats: int
    snap_p99_ms: float
    snap_max_ms: float
    norm_p99_ms: float
    norm_max_ms: float
    fork_ms: float
    child_copy_ms: float
    proactive_syncs: float
    table_faults: float
    data_cow: float
    min_qps: float
    oos_ms: float
    bcc_hist: dict[tuple[int, int], float]
    snapshot_window_s: float
    #: Throughput series of the first repeat (for the timeline figures).
    throughput: Optional[ThroughputSeries] = None
    snapshot_start_ns: float = 0.0
    snapshot_end_ns: float = 0.0
    extras: dict = field(default_factory=dict)


_CACHE: dict[tuple, PointSummary] = {}

#: ``run_point`` keyword defaults, in cache-key order (single source of
#: truth for :func:`point_key`).
_POINT_DEFAULTS: dict[str, object] = {
    "engine": "redis",
    "ratio": "set-only",
    "pattern": "uniform",
    "clients": 50,
    "copy_threads": 8,
    "aof": False,
    "rewrite": False,
    "production": False,
    "rate_per_sec": None,
}


def clear_cache() -> None:
    """Drop memoized points (tests use this for isolation)."""
    _CACHE.clear()


def point_key(
    profile: SimulationProfile, size_gb: float, method: str, **kwargs
) -> tuple:
    """The memo-cache key of one ``run_point`` parameter set.

    Artifact flags (``keep_throughput``/``keep_trace``) are *not* part
    of the key — they only control what the summary carries.
    """
    return (
        profile.name,
        profile.query_count,
        size_gb,
        method,
        *(kwargs.get(name, default)
          for name, default in _POINT_DEFAULTS.items()),
    )


def _compute_point(task: tuple) -> PointSummary:
    """Fan-out worker: one fresh point (module-level, picklable)."""
    profile, size_gb, method, kwargs = task
    return run_point(profile, size_gb, method, **kwargs)


def prewarm_points(
    profile: SimulationProfile, points: list[dict]
) -> None:
    """Fill the memo cache for ``run_point`` parameter sets, in parallel.

    ``points`` are keyword dicts with at least ``size_gb`` and
    ``method``.  Points are sharded over the configured ``--jobs``
    workers; each worker recomputes its points from their per-repeat
    seeds alone, so the summaries are byte-identical to serial
    execution regardless of worker count (DESIGN.md §14).  Already
    cached points are skipped.
    """
    from repro.experiments.parallel import parallel_map

    todo = []
    for kwargs in points:
        kwargs = dict(kwargs)
        size_gb = kwargs.pop("size_gb")
        method = kwargs.pop("method")
        if point_key(profile, size_gb, method, **kwargs) not in _CACHE:
            todo.append((profile, size_gb, method, kwargs))
    for task, summary in zip(todo, parallel_map(_compute_point, todo)):
        _, size_gb, method, kwargs = task
        _CACHE[point_key(profile, size_gb, method, **kwargs)] = summary


def run_point(
    profile: SimulationProfile,
    size_gb: float,
    method: str,
    engine: str = "redis",
    ratio: str = "set-only",
    pattern: str = "uniform",
    clients: int = 50,
    copy_threads: int = 8,
    aof: bool = False,
    rewrite: bool = False,
    production: bool = False,
    rate_per_sec: Optional[int] = None,
    keep_throughput: bool = False,
    keep_trace: bool = False,
) -> PointSummary:
    """Simulate one experiment point (memoized, averaged over repeats)."""
    key = point_key(
        profile,
        size_gb,
        method,
        engine=engine,
        ratio=ratio,
        pattern=pattern,
        clients=clients,
        copy_threads=copy_threads,
        aof=aof,
        rewrite=rewrite,
        production=production,
        rate_per_sec=rate_per_sec,
    )
    cached = _CACHE.get(key)
    if cached is not None:
        missing_throughput = keep_throughput and cached.throughput is None
        missing_trace = keep_trace and "trace" not in cached.extras
        if not (missing_throughput or missing_trace):
            return cached
        # Recompute to attach the missing artifact, but keep the union
        # of what the cache already holds and what this call asks for —
        # otherwise alternating keep_trace/keep_throughput callers drop
        # each other's artifact and recompute the same point forever.
        keep_throughput = keep_throughput or cached.throughput is not None
        keep_trace = keep_trace or "trace" in cached.extras

    if rate_per_sec is None:
        rate_per_sec = (
            KEYDB_RATE if engine == "keydb" else profile.set_rate_per_sec
        )
    engine_threads = KEYDB_THREADS if engine == "keydb" else 1
    disk = DiskModel(speedup=profile.persist_speedup)
    environment = PRODUCTION_ENVIRONMENT if production else None

    results: list[SnapshotSimResult] = []
    for repeat in range(profile.repeats):
        seed = 1000 + repeat
        if ratio == "set-only":
            workload = redis_benchmark_workload(
                profile.query_count,
                size_gb,
                rate_per_sec=rate_per_sec,
                clients=clients,
                seed=seed,
            )
        else:
            workload = memtier_workload(
                profile.query_count,
                size_gb,
                ratio=ratio,
                pattern=pattern,
                rate_per_sec=rate_per_sec,
                clients=clients,
                seed=seed,
            )
        config = SnapshotSimConfig(
            size_gb=size_gb,
            method=method,
            workload=workload,
            copy_threads=copy_threads,
            engine_threads=engine_threads,
            disk=disk,
            aof=aof,
            rewrite=rewrite,
            environment=environment,
            seed=seed * 7 + 1,
        )
        results.append(simulate_snapshot(config))

    summary = _summarize(
        results, size_gb, method, engine, keep_throughput
    )
    if keep_trace:
        # The first repeat's span trace (one per run; keeping every
        # repeat would multiply memory for no analytical gain).
        summary.extras["trace"] = results[0].trace
    _CACHE[key] = summary
    return summary


def _summarize(
    results: list[SnapshotSimResult],
    size_gb: float,
    method: str,
    engine: str,
    keep_throughput: bool,
) -> PointSummary:
    def mean(values) -> float:
        return float(np.mean(values))

    def p99_ms(sample) -> float:
        # Method 'none' runs have no snapshot window, so the snapshot
        # sample is legitimately empty; the tables render nan as '-'.
        return sample.p99_ms() if len(sample) else float("nan")

    snaps = [r.snapshot_queries() for r in results]
    norms = [r.normal_queries() for r in results]
    hist: dict[tuple[int, int], float] = {}
    for r in results:
        for bucket, count in r.interrupts.bcc_histogram().items():
            hist[bucket] = hist.get(bucket, 0.0) + count / len(results)
    first = results[0]
    return PointSummary(
        size_gb=size_gb,
        method=method,
        engine=engine,
        repeats=len(results),
        snap_p99_ms=mean([p99_ms(s) for s in snaps]),
        snap_max_ms=mean([s.max_ms() for s in snaps]),
        norm_p99_ms=mean([p99_ms(s) for s in norms]),
        norm_max_ms=mean([s.max_ms() for s in norms]),
        fork_ms=mean([r.fork_call_ns for r in results]) / 1e6,
        child_copy_ms=mean([r.child_copy_ns for r in results]) / 1e6,
        proactive_syncs=mean(
            [r.counts["proactive_syncs"] for r in results]
        ),
        table_faults=mean([r.counts["table_faults"] for r in results]),
        data_cow=mean([r.counts["data_cow"] for r in results]),
        min_qps=mean([r.min_snapshot_qps() for r in results]),
        oos_ms=mean([r.out_of_service_ns() for r in results]) / 1e6,
        bcc_hist=hist,
        snapshot_window_s=mean(
            [
                (r.snapshot_end_ns - r.snapshot_start_ns) / 1e9
                for r in results
            ]
        ),
        throughput=first.throughput() if keep_throughput else None,
        snapshot_start_ns=first.snapshot_start_ns,
        snapshot_end_ns=first.snapshot_end_ns,
    )


def sweep_sizes(profile: SimulationProfile) -> tuple[int, ...]:
    """Instance sizes for the full-sweep figures."""
    return profile.sizes_gb


def reduction(baseline: float, improved: float) -> float:
    """Percentage reduction, as the paper quotes (positive = better)."""
    if baseline == 0:
        return float("nan")
    return (baseline - improved) / baseline * 100.0
