"""Experiment runners: one module per paper figure/table.

Importing this package registers every experiment in
:mod:`repro.experiments.registry`; ``repro-asyncfork list`` shows them and
``repro-asyncfork run <id>`` executes one from the command line.
"""

from repro.experiments import (  # noqa: F401 - imported for registration
    ablations,
    chaos_sweep,
    fig03_fork_time,
    fig04_05_def_latency,
    fig09_10_latency,
    fig11_interruptions,
    fig12_patterns,
    fig13_clients,
    fig14_15_threads,
    fig16_production,
    fig17_19_throughput,
    figX_cluster,
    figx_failover,
    figx_live,
    figx_reshard,
    fig20_oos_time,
    fig21_aof,
    fig22_fork_call,
    sec32_hugepage,
    tab01_02_tlb,
)
from repro.experiments.registry import (
    all_experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = ["all_experiment_ids", "get_experiment", "run_experiment"]
