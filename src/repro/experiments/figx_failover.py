"""Replication and failover under each fork engine (extension figure).

Two questions the paper's standalone measurements leave open, answered
on the replication layer:

1. **What does attaching a replica cost live traffic?**  A full sync
   starts with the BGSAVE fork, so the serving thread stalls for the
   page-table copy while the open-loop stream keeps arriving.  Phase
   one attaches a replica mid-run per fork method and splits p99 into
   the sync window vs quiet time — the paper's latency-spike story,
   restated as "adding a replica is an incident under the default
   fork and a non-event under Async-fork".

2. **Does failover lose data, and how fast is it?**  Phase two runs a
   seeded chaos drill per method: brief stream partition (heals with a
   partial resync — no second fork), master SIGKILL mid-full-sync,
   quorum detection, best-offset election, torn-AOF repair at
   promotion, peer resync against the new master, and a slot-map
   repair check.  The drill asserts zero loss of WAIT-acked writes
   and replays byte-identically per seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cluster.cluster import FORK_METHODS, make_fork_engine
from repro.config import EngineConfig, SimulationProfile
from repro.errors import MasterDownError
from repro.experiments.registry import register
from repro.faults.plan import (
    SITE_AOF_BYTES,
    SITE_MASTER_CRON,
    SITE_REPL_SEND,
    FaultPlan,
    FaultSpec,
)
from repro.kernel.clock import Clock
from repro.kvs.engine import KvEngine
from repro.kvs.supervisor import SnapshotSupervisor
from repro.experiments.parallel import parallel_map
from repro.metrics.latency import percentile
from repro.metrics.report import ExperimentReport, Table
from repro.repl import (
    FailoverCoordinator,
    FailureDetector,
    ReplLink,
    ReplicaNode,
    ReplicationMaster,
)
from repro.units import us
from repro.workload.replication import (
    ReplWorkloadSpec,
    build_repl_workload,
    prepopulate_master,
    run_replicated_workload,
)

#: Dataset of the chaos drill (small: the drill is about protocol, not
#: fork cost — phase one owns the timing story).
DRILL_KEYS = 300
DRILL_VALUE = b"\xab" * 256
#: Writes acknowledged through WAIT before the master is killed.
DRILL_ACKED_WRITES = 24
#: Drill pacing: one simulated tick per loop iteration.
TICK_NS = us(20)


def _new_master(
    method: str, seed: int, plan=None
) -> tuple[ReplicationMaster, Clock]:
    clock = Clock()
    engine = KvEngine(
        fork_engine=make_fork_engine(method, clock),
        config=EngineConfig(aof_enabled=True),
    )
    supervisor = SnapshotSupervisor(engine, plan=plan)
    master = ReplicationMaster(
        engine,
        supervisor=supervisor,
        seed=seed,
        heartbeat_interval_ns=us(50),
        plan=plan,
    )
    return master, clock


# -- phase one: live traffic during a full sync -------------------------


def _live_sync_run(profile: SimulationProfile, method: str, seed: int):
    count = min(20_000, max(2_000, profile.query_count // 60))
    # The dataset, not the query count, sets the fork cost — keep it
    # large enough (~80 MB) that the default fork's page-table copy is
    # a visible stall against the ~0.1 ms quiet p99.
    spec = ReplWorkloadSpec(
        count=count,
        n_keys=20_000,
        rate_per_sec=float(profile.set_rate_per_sec),
        value_size=4_096,
        seed=seed,
    )
    master, clock = _new_master(method, seed)
    workload = build_repl_workload(spec)
    prepopulate_master(master, workload)
    replica = ReplicaNode("replica0", clock)
    result = run_replicated_workload(
        master,
        workload,
        sync_replica=replica,
        sync_link=ReplLink(name="replica0"),
        sync_at=count // 4,
    )
    replica.close()
    master.engine.process.exit()
    return result


def _live_sync_task(task):
    """``parallel_map`` adapter (module-level, picklable)."""
    return _live_sync_run(*task)


# -- phase two: the seeded failover drill -------------------------------


def _drill_plan(seed: int) -> FaultPlan:
    """The drill's chaos schedule (identical shape for every method)."""
    return FaultPlan(
        seed,
        [
            # Brief partition of replica1's link: the master drops the
            # connection, writes keep flowing to replica0, and the later
            # PSYNC must answer +CONTINUE (the partition has healed).
            FaultSpec(
                site=SITE_REPL_SEND,
                kind="partition",
                after=2,
                count=1,
                match=lambda d: d.get("replica") == "replica1",
            ),
            # The master dies on its 6th cron tick — after replica2's
            # full-sync fork, before the child finishes: mid-BGSAVE.
            FaultSpec(site=SITE_MASTER_CRON, kind="sigkill", after=5),
            # The winner's AOF tail is torn at promotion time.
            FaultSpec(
                site=SITE_AOF_BYTES,
                kind="torn-tail",
                magnitude=2,
                match=lambda d: d.get("stage") == "promotion",
            ),
        ],
    )


def _run_drill(method: str, seed: int) -> dict:
    plan = _drill_plan(seed)
    master, clock = _new_master(method, seed, plan=plan)
    for i in range(DRILL_KEYS):
        master.engine.set(b"base:%06d" % i, DRILL_VALUE)

    replicas = {}
    for name in ("replica0", "replica1"):
        node = ReplicaNode(name, clock, stale_after_ns=us(100))
        link = ReplLink(name=name, fault_plan=plan)
        master.add_replica(node, link)
        master.full_sync(master.sessions[name])
        replicas[name] = node
    master.min_replicas_to_write = 1

    # WAIT-acked writes: these must survive the failover, bit for bit.
    acked = {}
    for i in range(DRILL_ACKED_WRITES):
        key, value = b"acked:%04d" % i, b"A%06d" % (seed * 1_000 + i)
        master.engine.set(key, value)
        if master.wait(2) >= 1:
            acked[key] = value
    # The partition spec has cut replica1's stream by now; writes keep
    # flowing to replica0 while replica1 falls behind.
    partition_healed = not master.sessions["replica1"].connected
    full_syncs_before = master.full_syncs
    kind, streamed = master.psync("replica1")
    partial_ok = (
        kind == "CONTINUE"
        and master.full_syncs == full_syncs_before
        and streamed > 0
    )

    # Attach a fresh third replica; the master will die mid-sync.
    replica2 = ReplicaNode("replica2", clock, stale_after_ns=us(100))
    master.add_replica(replica2, ReplLink(name="replica2", fault_plan=plan))
    detector = FailureDetector(
        list(replicas.values()), timeout_ns=us(200), quorum=2
    )
    coordinator = FailoverCoordinator(
        master, detector, seed=seed, plan=plan
    )
    stale_flagged = 0
    write_refused_while_down = False
    report = None
    for tick in range(600):
        clock.advance(TICK_NS)
        master.cron()
        if tick == 4:
            master.begin_full_sync(master.sessions["replica2"])
        elif tick >= 5:
            session = master.sessions["replica2"]
            if session.sync_job is not None:
                master.step_full_sync(session)
        if not master.alive:
            _, stale = replicas["replica0"].get(b"base:000000", clock.now)
            stale_flagged += int(stale)
            try:
                master.engine.set(b"orphan", b"x")
            except MasterDownError:
                write_refused_while_down = True
        report = coordinator.tick(clock.now)
        if report is not None:
            break
    assert report is not None, "drill never promoted a replica"
    promoted = coordinator.promoted
    assert promoted is not None

    acked_lost = sum(
        1
        for key, value in acked.items()
        if promoted.engine.store.get(key) != value
    )
    promoted.engine.set(b"post-failover", b"ok")
    datasum = hashlib.blake2b(digest_size=12)
    for key in sorted(promoted.engine.store.keys()):
        datasum.update(key)
        datasum.update(promoted.engine.store.get(key) or b"")
    digest = hashlib.blake2b(
        "|".join(
            [
                plan.fingerprint(),
                report.promoted,
                str(report.elected_offset),
                str(report.recovery_ns),
                str(promoted.backlog.master_offset),
                ",".join(
                    f"{k}={v}" for k, v in sorted(report.peer_resyncs.items())
                ),
                datasum.hexdigest(),
            ]
        ).encode(),
        digest_size=16,
    ).hexdigest()

    outcome = {
        "promoted": report.promoted,
        "recovery_ns": report.recovery_ns,
        "acked_total": len(acked),
        "acked_lost": acked_lost,
        "partition_healed": partition_healed,
        "partial_ok": partial_ok,
        "stale_flagged": stale_flagged,
        "write_refused_while_down": write_refused_while_down,
        "aof_bytes_dropped": report.aof_bytes_dropped,
        "peer_resyncs": dict(report.peer_resyncs),
        "digest": digest,
    }
    for node in replicas.values():
        node.close()
    replica2.close()
    if master.engine.process.alive:
        master.engine.process.exit()
    return outcome


def _drill_task(task):
    """Run one drill plus its replay; report whether they matched."""
    method, seed = task
    outcome = _run_drill(method, seed)
    replay = _run_drill(method, seed)
    return outcome, outcome["digest"] == replay["digest"]


@register(
    "figx-failover",
    "Replication & failover: sync spikes, recovery, acked-write safety",
)
def run(profile: SimulationProfile) -> ExperimentReport:
    """Sweep fork method over live-sync latency and failover drills."""
    report = ExperimentReport(
        "figx-failover",
        "replica full-sync latency impact and failover drill outcomes "
        "per fork engine",
    )
    sync_table = Table(
        "Live traffic while a replica full-syncs (p99 inside vs outside "
        "the sync window)",
        ["method", "p99 in-sync ms", "p99 quiet ms", "spike x",
         "fork stall ms", "ship ms"],
    )
    # Each (method, seed) run is seeded independently — fan the grid
    # out over the ``--jobs`` workers, aggregate in grid order.
    sync_grid = [
        (profile, method, seed)
        for method in FORK_METHODS
        for seed in range(profile.repeats)
    ]
    sync_runs: dict[str, list] = {}
    for (_, method, _), result in zip(
        sync_grid, parallel_map(_live_sync_task, sync_grid)
    ):
        sync_runs.setdefault(method, []).append(result)
    p99_in = {}
    p99_out = {}
    for method in FORK_METHODS:
        inside_all, outside_all, stalls, ships = [], [], [], []
        for result in sync_runs[method]:
            inside, outside = result.split_by_window()
            inside_all.extend(inside.tolist())
            outside_all.extend(outside.tolist())
            stalls.append(result.fork_stall_ns)
            if result.sync_report is not None:
                ships.append(result.sync_report.ship_ns)
        # The sync window always opens in this experiment, but guard the
        # percentile anyway — it raises on empty samples now.
        p99_in[method] = (
            percentile(np.asarray(inside_all), 99.0) / 1e6
            if inside_all
            else float("nan")
        )
        p99_out[method] = (
            percentile(np.asarray(outside_all), 99.0) / 1e6
            if outside_all
            else float("nan")
        )
        sync_table.add_row(
            method,
            p99_in[method],
            p99_out[method],
            p99_in[method] / max(p99_out[method], 1e-9),
            max(stalls) / 1e6,
            (max(ships) / 1e6) if ships else 0.0,
        )
    report.add_table(sync_table)

    drill_table = Table(
        "Failover drill (partition -> partial resync; SIGKILL mid-sync "
        "-> promotion)",
        ["method", "seed", "recovery ms", "acked kept", "partial resync",
         "AOF bytes repaired", "peer resyncs"],
    )
    drill_grid = [
        (method, seed)
        for method in FORK_METHODS
        for seed in range(profile.repeats)
    ]
    drills = []
    replay_identical = True
    for (method, seed), (outcome, replayed_ok) in zip(
        drill_grid, parallel_map(_drill_task, drill_grid)
    ):
        replay_identical &= replayed_ok
        drills.append(outcome)
        drill_table.add_row(
            method,
            seed,
            outcome["recovery_ns"] / 1e6,
            f"{outcome['acked_total'] - outcome['acked_lost']}"
            f"/{outcome['acked_total']}",
            "yes" if outcome["partial_ok"] else "NO",
            outcome["aof_bytes_dropped"],
            ",".join(
                f"{k}:{v}"
                for k, v in sorted(outcome["peer_resyncs"].items())
            ),
        )
    report.add_table(drill_table)

    report.check(
        "every drill promoted a replica after the master SIGKILL",
        all(d["promoted"] for d in drills),
    )
    report.check(
        "zero WAIT-acked writes lost across every promotion",
        all(d["acked_lost"] == 0 for d in drills),
    )
    report.check(
        "brief partition healed with a partial resync (no second fork)",
        all(d["partition_healed"] and d["partial_ok"] for d in drills),
    )
    report.check(
        "replica reads were flagged stale while the master was down",
        all(d["stale_flagged"] > 0 for d in drills),
    )
    report.check(
        "writes to the dead master were refused until promotion",
        all(d["write_refused_while_down"] for d in drills),
    )
    report.check(
        "drills replay byte-identically from their seeds",
        replay_identical,
    )
    report.check(
        "full-sync p99 spike is visibly smaller under Async-fork than "
        "the default fork",
        p99_in["async"] < p99_in["default"]
        and (p99_in["async"] / max(p99_out["async"], 1e-9))
        < 0.5 * (p99_in["default"] / max(p99_out["default"], 1e-9)),
    )
    return report
