"""Tables 1 & 2: the shared-page-table data-leakage scenario.

Table 1 walks through a page migration while parent and child share a
page table (ODF): the OS invalidates the PTE through the parent, flushes
the *parent's* TLB, then loops over the other processes looking for a PTE
that still reads "V -> X" — but the shared PTE already reads "none
present", so the child is skipped and its TLB keeps the stale translation.
After the OS maps V to the new frame Y and frame X is recycled to another
owner, the child's future reads of V hit the stale TLB entry and return
the new owner's data: a leak, and an inconsistent snapshot.

Table 2 replays the identical migration under Async-fork: page tables are
private, the PTE-table page lock serializes the migration against the
child's copy, and whichever order they run in, the child ends up with the
correct mapping and no stale TLB entry.

This experiment drives the *functional* substrate — real page tables,
real TLBs, the real migration loop from :mod:`repro.mem.reclaim` — and
also demonstrates Appendix A's working-set-size distortion.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.core.async_fork import AsyncFork
from repro.experiments.registry import register
from repro.kernel.forks.odf import OnDemandFork
from repro.kernel.task import Process
from repro.mem.frames import FrameAllocator
from repro.mem.reclaim import migrate_page
from repro.metrics.report import ExperimentReport, Table

SECRET = b"TENANT-B-SECRET!"
SNAPSHOT_VALUE = b"snapshot-value-A"


def _build(engine_cls):
    frames = FrameAllocator(reuse_freed=True)
    parent = Process(frames, name="redis")
    vma = parent.mm.mmap(1 << 21)  # one PTE-table span
    vaddr = vma.start
    parent.mm.write_memory(vaddr, SNAPSHOT_VALUE)
    engine = engine_cls()
    result = engine.fork(parent)
    return frames, parent, result, vaddr


def run_odf_leak() -> dict:
    """Reproduce Table 1: returns the observed states per step."""
    frames, parent, result, vaddr = _build(OnDemandFork)
    child = result.child
    # The child starts persisting: it reads V, caching V -> X in its TLB.
    assert child.mm.read_memory(vaddr, len(SNAPSHOT_VALUE)) == SNAPSHOT_VALUE
    old_frame = child.mm.tlb.cached(vaddr)
    # Memory compaction migrates the page.  The kernel's loop skips the
    # child: the shared PTE no longer reads "V -> X" once the parent's
    # update went in.
    report = migrate_page([parent.mm, child.mm], vaddr, frames)
    # Frame X is recycled to another owner who stores a secret in it.
    victim = frames.alloc("data")
    reused_x = victim.frame == report.old_frame
    if reused_x:
        frames.write(victim.frame, 0, SECRET)
    stale_tlb = child.mm.tlb.cached(vaddr)
    pte_frame_now = child.mm.page_table.translate(vaddr)
    leaked = child.mm.read_memory(vaddr, len(SECRET))
    result.session.finish()
    return {
        "old_frame": report.old_frame,
        "new_frame": report.new_frame,
        "skipped": report.skipped,
        "tlb_before": old_frame,
        "tlb_after": stale_tlb,
        "pte_frame": pte_frame_now,
        "frame_reused": reused_x,
        "read_value": leaked,
        "leaked": leaked == SECRET,
        "tlb_stale": stale_tlb is not None
        and pte_frame_now is not None
        and stale_tlb != pte_frame_now,
    }


def run_async_no_leak(migrate_before_copy: bool = True) -> dict:
    """Reproduce Table 2: same migration, Async-fork, no leak."""
    frames, parent, result, vaddr = _build(AsyncFork)
    child = result.child
    session = result.session
    if not migrate_before_copy:
        session.run_to_completion()
    # Migration: with private tables the loop updates everyone it finds;
    # a not-yet-copied child simply has no PTE (it will copy the updated
    # one later, serialized by the PTE-table page lock).
    report = migrate_page([parent.mm, child.mm], vaddr, frames)
    victim = frames.alloc("data")
    if victim.frame == report.old_frame:
        frames.write(victim.frame, 0, SECRET)
    if migrate_before_copy:
        session.run_to_completion()
    value = child.mm.read_memory(vaddr, len(SNAPSHOT_VALUE))
    stale_tlb = child.mm.tlb.cached(vaddr)
    pte_frame_now = child.mm.page_table.translate(vaddr)
    return {
        "old_frame": report.old_frame,
        "new_frame": report.new_frame,
        "skipped": report.skipped,
        "read_value": value,
        "consistent": value == SNAPSHOT_VALUE,
        "tlb_stale": stale_tlb is not None
        and pte_frame_now is not None
        and stale_tlb != pte_frame_now,
    }


def run_wss_distortion() -> dict:
    """Appendix A: the child's reads pollute the parent's WSS under ODF."""
    distortion = {}
    for name, engine_cls in (("odf", OnDemandFork), ("async", AsyncFork)):
        frames = FrameAllocator()
        parent = Process(frames, name="redis")
        vma = parent.mm.mmap(1 << 21)
        for offset in range(0, 64 * 4096, 4096):
            parent.mm.write_memory(vma.start + offset, b"v")
        parent.mm.clear_accessed_bits()
        result = engine_cls().fork(parent)
        session = result.session
        if session is not None and hasattr(session, "run_to_completion"):
            session.run_to_completion()
        # The idle parent touches nothing; the child reads everything.
        for offset in range(0, 64 * 4096, 4096):
            result.child.mm.read_memory(vma.start + offset, 1)
        distortion[name] = parent.mm.estimate_wss()
        if hasattr(session, "finish"):
            session.finish()
    return distortion


@register("tab1-2", "Shared-page-table data leakage (and WSS distortion)")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Drive the functional substrate through Tables 1 and 2."""
    report = ExperimentReport(
        "tab1-2", "page migration under shared vs private page tables"
    )
    odf = run_odf_leak()
    table1 = Table(
        "Table 1 — ODF (shared page table): migration skips the child",
        ["observation", "value"],
    )
    table1.add_row("migration skipped processes", ", ".join(odf["skipped"]))
    table1.add_row("child TLB still maps V ->", odf["tlb_after"])
    table1.add_row("child PTE now maps V ->", odf["pte_frame"])
    table1.add_row("freed frame recycled to tenant B", odf["frame_reused"])
    table1.add_row("child read of V returns", odf["read_value"])
    table1.add_row("DATA LEAKED", odf["leaked"])
    report.add_table(table1)

    asy_before = run_async_no_leak(migrate_before_copy=True)
    asy_after = run_async_no_leak(migrate_before_copy=False)
    table2 = Table(
        "Table 2 — Async-fork (private page tables): both orders safe",
        ["scenario", "child read", "consistent", "stale TLB"],
    )
    table2.add_row(
        "migrate before child copies", asy_before["read_value"],
        asy_before["consistent"], asy_before["tlb_stale"],
    )
    table2.add_row(
        "migrate after child copies", asy_after["read_value"],
        asy_after["consistent"], asy_after["tlb_stale"],
    )
    report.add_table(table2)

    wss = run_wss_distortion()
    table3 = Table(
        "Appendix A — parent WSS estimate after an idle parent",
        ["engine", "accessed PTEs attributed to the parent"],
    )
    for name, value in wss.items():
        table3.add_row(name, value)
    report.add_table(table3)

    report.check("ODF leaks through the stale TLB", odf["leaked"])
    report.check("ODF leaves the child TLB inconsistent", odf["tlb_stale"])
    report.check(
        "Async-fork is consistent when migration precedes the copy",
        asy_before["consistent"] and not asy_before["tlb_stale"],
    )
    report.check(
        "Async-fork is consistent when migration follows the copy",
        asy_after["consistent"] and not asy_after["tlb_stale"],
    )
    report.check(
        "shared tables pollute the parent's WSS; private ones do not",
        wss["odf"] > 0 and wss["async"] == 0,
    )
    return report
