"""Registry mapping experiment ids (fig3, tab1, ...) to runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import SimulationProfile, active_profile
from repro.metrics.report import ExperimentReport

Runner = Callable[[SimulationProfile], ExperimentReport]
#: Optional enumerator of an experiment's ``run_point`` parameter sets
#: (keyword dicts with at least ``size_gb`` and ``method``); used to
#: prewarm the point cache across ``--jobs`` workers before the runner
#: aggregates serially.
PointsFn = Callable[[SimulationProfile], list]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    title: str
    runner: Runner
    points: Optional[PointsFn] = None


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str, title: str, points: Optional[PointsFn] = None
):
    """Decorator registering ``runner(profile) -> ExperimentReport``."""

    def wrap(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id, title, runner, points
        )
        return runner

    return wrap


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiment_ids() -> list[str]:
    """Sorted ids of every registered experiment."""
    return sorted(_REGISTRY)


def run_experiment(
    experiment_id: str, profile: Optional[SimulationProfile] = None
) -> ExperimentReport:
    """Run one experiment under ``profile`` (default: env-selected)."""
    spec = get_experiment(experiment_id)
    if profile is None:
        profile = active_profile()
    if spec.points is not None:
        # Compute the sweep's points across the ``--jobs`` workers (a
        # no-op at jobs=1 or when the cache already holds them); the
        # runner then aggregates from the cache serially.
        from repro.experiments.common import prewarm_points

        prewarm_points(profile, spec.points(profile))
    return spec.runner(profile)
