"""Registry mapping experiment ids (fig3, tab1, ...) to runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import SimulationProfile, active_profile
from repro.metrics.report import ExperimentReport

Runner = Callable[[SimulationProfile], ExperimentReport]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    title: str
    runner: Runner


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(experiment_id: str, title: str):
    """Decorator registering ``runner(profile) -> ExperimentReport``."""

    def wrap(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id, title, runner
        )
        return runner

    return wrap


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiment_ids() -> list[str]:
    """Sorted ids of every registered experiment."""
    return sorted(_REGISTRY)


def run_experiment(
    experiment_id: str, profile: Optional[SimulationProfile] = None
) -> ExperimentReport:
    """Run one experiment under ``profile`` (default: env-selected)."""
    spec = get_experiment(experiment_id)
    if profile is None:
        profile = active_profile()
    return spec.runner(profile)
