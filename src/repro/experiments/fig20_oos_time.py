"""Figure 20: total out-of-service time of the Redis server.

The parent is out of service whenever it executes ``copy_pmd_range()`` —
during the fork call itself and during every later interruption (table
CoW for ODF, proactive synchronization for Async-fork).  Summing all
those episodes, ODF keeps the parent in the kernel for far longer than
Async-fork at every size.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point, sweep_sizes
from repro.experiments.registry import register
from repro.metrics.report import ExperimentReport, Table


@register("fig20", "Total out-of-service time of the parent")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Sum kernel-mode episode durations per method and size."""
    report = ExperimentReport(
        "fig20", "sum of copy_pmd_range() episode durations"
    )
    table = Table(
        "Figure 20 — total out-of-service time (ms)",
        ["size GiB", "ODF", "Async-fork", "Async/ODF"],
    )
    sizes = sweep_sizes(profile)
    oos = {}
    for size in sizes:
        odf = run_point(profile, size, "odf")
        asy = run_point(profile, size, "async")
        oos[(size, "odf")] = odf.oos_ms
        oos[(size, "async")] = asy.oos_ms
        ratio = asy.oos_ms / odf.oos_ms if odf.oos_ms else float("nan")
        table.add_row(size, odf.oos_ms, asy.oos_ms, ratio)
    report.add_table(table)

    report.check(
        "Async-fork total out-of-service < ODF's at every size >= 2GiB",
        all(
            oos[(s, "async")] < oos[(s, "odf")]
            for s in sizes
            if s >= 2
        ),
    )
    report.check(
        "ODF out-of-service grows with instance size",
        oos[(max(sizes), "odf")] > oos[(min(sizes), "odf")],
    )
    return report
