"""Figure 11: how often the parent is interrupted during the snapshot.

The paper instruments ``copy_pmd_range()`` with bcc: every invocation
falls into the [16,31] µs or [32,63] µs latency bucket, and on a 16 GiB
instance ODF interrupts the parent 7348 times against Async-fork's 446.
The mechanism: an ODF interruption (table CoW) can fire for as long as the
child lives — tens of seconds of persist — while an Async-fork
interruption (proactive sync) can only fire while the child is still
copying PMD/PTEs, a sub-second window.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point, sweep_sizes
from repro.experiments.registry import register
from repro.metrics.report import Comparison, ExperimentReport, Table

PAPER_16G = {"odf": 7348, "async": 446}


@register("fig11", "Frequency of parent interruptions (bcc buckets)")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Count interruptions per method/size, bucketed like bcc."""
    report = ExperimentReport(
        "fig11", "interruptions of the parent during the snapshot"
    )
    sizes = sweep_sizes(profile)
    table = Table(
        "Figure 11 — interruption counts by bcc bucket",
        ["size GiB", "method", "[16,31]us", "[32,63]us", "other", "total"],
    )
    totals: dict[tuple[int, str], float] = {}
    in_expected: dict[tuple[int, str], float] = {}
    for size in sizes:
        for method in ("odf", "async"):
            point = run_point(profile, size, method)
            hist = point.bcc_hist
            b16 = hist.get((16, 31), 0.0)
            b32 = hist.get((32, 63), 0.0)
            total = sum(hist.values())
            other = total - b16 - b32
            totals[(size, method)] = total
            in_expected[(size, method)] = (
                (b16 + b32) / total if total else 1.0
            )
            table.add_row(size, method, b16, b32, other, total)
    report.add_table(table)

    if 16 in sizes:
        report.comparisons.extend(
            [
                Comparison("ODF interruptions @16GiB", PAPER_16G["odf"],
                           totals[(16, "odf")], unit="count"),
                Comparison("Async interruptions @16GiB",
                           PAPER_16G["async"], totals[(16, "async")],
                           unit="count"),
            ]
        )
    report.check(
        "Async-fork interrupts far less than ODF at every size >= 4GiB",
        all(
            totals[(s, "async")] < 0.5 * totals[(s, "odf")]
            for s in sizes
            if s >= 4 and totals[(s, "odf")] > 0
        ),
    )
    report.check(
        "interruption durations land in the 16-63us bcc buckets (>=90%)",
        all(v >= 0.9 for v in in_expected.values()),
    )
    report.check(
        "ODF interruption count tracks the table count (grows with size)",
        totals[(max(sizes), "odf")] > totals[(min(sizes), "odf")],
    )
    return report
