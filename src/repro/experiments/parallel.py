"""Deterministic multiprocess execution of sweep points.

The experiments are embarrassingly parallel at the *point* level — each
(parameter set, seed) pair builds its own workload, engines and clock
from its seed and shares nothing with its neighbours (the seed-per-point
contract; see DESIGN.md §14).  That makes fan-out trivial to do
deterministically:

* work items are enumerated in the same order serial execution would
  visit them;
* each worker computes its items from their seeds alone;
* :func:`parallel_map` returns results in input order (``pool.map``),
  so aggregation sees exactly the serial sequence.

Output is therefore byte-identical to a serial run at any worker count
(including ``--jobs 1``), which CI asserts.  Workers are forked — the
callable and items only need to be picklable for the result path.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Process-wide worker count, set by the CLI's ``--jobs`` flag.
_JOBS = 1


def set_jobs(jobs: int) -> None:
    """Set the worker count used when ``parallel_map`` isn't told one."""
    global _JOBS
    _JOBS = max(1, int(jobs))


def get_jobs() -> int:
    """The configured worker count (1 = serial)."""
    return _JOBS


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order; fan out if asked.

    ``fn`` must be a module-level callable and its results picklable.
    With ``jobs`` (or the configured ``--jobs``) at 1, this is a plain
    list comprehension — no pool, no pickling, no fork.
    """
    work: Sequence[T] = list(items)
    n_jobs = get_jobs() if jobs is None else max(1, int(jobs))
    n_jobs = min(n_jobs, len(work))
    if n_jobs <= 1:
        return [fn(item) for item in work]
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [fn(item) for item in work]
    with ctx.Pool(n_jobs) as pool:
        return pool.map(fn, work)
