"""Command-line entry points: ``repro-asyncfork`` and ``repro-trace``.

Examples::

    repro-asyncfork list
    repro-asyncfork run fig9-10
    repro-asyncfork run fig9-10 --trace fig9.json
    repro-asyncfork run-all --profile quick
    repro-trace --method async --size 8 --out async8.json

``--trace`` (and the ``trace`` subcommand behind ``repro-trace``)
export a Chrome-trace/Perfetto JSON — load it at ``chrome://tracing``
or https://ui.perfetto.dev — and print the per-fork phase-breakdown
report (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import FULL_PROFILE, QUICK_PROFILE, active_profile


def _profile_from(args) -> object:
    if args.profile == "quick":
        return QUICK_PROFILE
    if args.profile == "full":
        return FULL_PROFILE
    return active_profile()


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-asyncfork",
        description="Reproduce the tables and figures of the Async-fork "
        "paper (VLDB 2023) on the simulated kernel.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment_id", help="e.g. fig9-10, tab1-2")
    run_p.add_argument(
        "--profile", choices=("quick", "full", "env"), default="env"
    )
    run_p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also export the tables as CSV into DIR",
    )
    run_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export a Chrome-trace JSON of every simulated run",
    )
    run_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweeps (output is byte-identical "
        "at any N; default 1)",
    )

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument(
        "--profile", choices=("quick", "full", "env"), default="env"
    )
    all_p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also export the tables as CSV into DIR",
    )
    all_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export a Chrome-trace JSON of every simulated run",
    )
    all_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweeps (output is byte-identical "
        "at any N; default 1)",
    )

    trace_p = sub.add_parser(
        "trace",
        help="trace one snapshot run; export Chrome-trace JSON and "
        "print the phase breakdown",
    )
    trace_p.add_argument(
        "--method",
        choices=("default", "odf", "async", "none"),
        default="async",
    )
    trace_p.add_argument(
        "--size", type=float, default=8.0, metavar="GB",
        help="instance size in GiB (default 8)",
    )
    trace_p.add_argument(
        "--engine", choices=("redis", "keydb"), default="redis"
    )
    trace_p.add_argument(
        "--profile", choices=("quick", "full", "env"), default="env"
    )
    trace_p.add_argument(
        "--out", metavar="PATH", default="trace.json",
        help="Chrome-trace JSON output path (default trace.json)",
    )

    args = parser.parse_args(argv)

    if args.command == "trace":
        return _trace_command(args)

    # Import experiments lazily so `--help` stays fast.
    from repro.experiments import all_experiment_ids, get_experiment
    from repro.experiments.registry import run_experiment

    if args.command == "list":
        for experiment_id in all_experiment_ids():
            spec = get_experiment(experiment_id)
            print(f"{experiment_id:12s} {spec.title}")
        return 0

    profile = _profile_from(args)
    failed = []
    targets = (
        [args.experiment_id]
        if args.command == "run"
        else all_experiment_ids()
    )
    requested_jobs = getattr(args, "jobs", 1)
    jobs = requested_jobs
    collector = None
    trace_path = getattr(args, "trace", None)
    if trace_path and jobs > 1:
        # Spans are recorded in the worker processes and would be lost;
        # tracing needs the simulations in-process.
        print(
            f"WARNING: --trace forces --jobs 1 (you asked for "
            f"--jobs {requested_jobs}; spans are recorded in-process, "
            f"so worker processes would lose them)",
            file=sys.stderr,
        )
        jobs = 1
    from repro.experiments.parallel import set_jobs

    set_jobs(jobs)
    if trace_path:
        from repro.experiments.common import clear_cache
        from repro.obs import tracer as obs_tracer

        # Memoized points would bypass the simulation (and so the
        # spans); trace runs always simulate fresh.
        clear_cache()
        collector = obs_tracer.install(obs_tracer.Tracer())
    try:
        for experiment_id in targets:
            report = run_experiment(experiment_id, profile)
            report.print()
            out = getattr(args, "out", None)
            if out:
                for name in report.save_csv(out):
                    print(f"wrote {out}/{name}")
            if not report.all_checks_pass():
                failed.append(experiment_id)
        out = getattr(args, "out", None)
        if out:
            _write_run_meta(
                out, profile, targets, requested_jobs, jobs, trace_path
            )
    finally:
        if collector is not None:
            from repro.obs import tracer as obs_tracer

            obs_tracer.uninstall(collector)
    if collector is not None:
        _export_trace(collector, trace_path)
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


def _write_run_meta(
    out_dir: str,
    profile,
    targets: list,
    requested_jobs: int,
    effective_jobs: int,
    trace_path,
) -> None:
    """Record how the CSVs were produced, next to them.

    The data CSVs are byte-identical at any ``--jobs`` value (the
    determinism contract CI diffs them on), so run provenance —
    requested vs *effective* worker count, whether tracing forced a
    serial run — lives in this sidecar instead of the CSV headers.  The
    CI diff excludes it by name (``diff -r -x run_meta.json``).
    """
    import json
    import os

    meta = {
        "profile": getattr(profile, "name", str(profile)),
        "experiments": list(targets),
        "requested_jobs": requested_jobs,
        "effective_jobs": effective_jobs,
        "trace": bool(trace_path),
    }
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "run_meta.json")
    with open(path, "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def _trace_command(args) -> int:
    """The ``trace`` subcommand: one traced run + breakdown report."""
    from repro.experiments.common import clear_cache, run_point

    profile = _profile_from(args)
    clear_cache()
    point = run_point(
        profile,
        args.size,
        args.method,
        engine=args.engine,
        keep_trace=True,
    )
    trace = point.extras["trace"]
    _export_trace(trace, args.out)
    return 0


def _export_trace(trace, path: str) -> None:
    from repro.obs.export import export_chrome
    from repro.obs.phases import breakdown

    export_chrome(trace, path)
    print(f"wrote {path} ({len(trace)} spans)")
    print(breakdown(trace).report())


def trace_main(argv: list[str] | None = None) -> int:
    """The ``repro-trace`` console script: ``main`` with ``trace``."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["trace", *argv])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
