"""Command-line entry point: ``repro-asyncfork``.

Examples::

    repro-asyncfork list
    repro-asyncfork run fig9-10
    repro-asyncfork run-all --profile quick
"""

from __future__ import annotations

import argparse
import sys

from repro.config import FULL_PROFILE, QUICK_PROFILE, active_profile


def _profile_from(args) -> object:
    if args.profile == "quick":
        return QUICK_PROFILE
    if args.profile == "full":
        return FULL_PROFILE
    return active_profile()


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-asyncfork",
        description="Reproduce the tables and figures of the Async-fork "
        "paper (VLDB 2023) on the simulated kernel.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment_id", help="e.g. fig9-10, tab1-2")
    run_p.add_argument(
        "--profile", choices=("quick", "full", "env"), default="env"
    )
    run_p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also export the tables as CSV into DIR",
    )

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument(
        "--profile", choices=("quick", "full", "env"), default="env"
    )
    all_p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also export the tables as CSV into DIR",
    )

    args = parser.parse_args(argv)

    # Import experiments lazily so `--help` stays fast.
    from repro.experiments import all_experiment_ids, get_experiment
    from repro.experiments.registry import run_experiment

    if args.command == "list":
        for experiment_id in all_experiment_ids():
            spec = get_experiment(experiment_id)
            print(f"{experiment_id:12s} {spec.title}")
        return 0

    profile = _profile_from(args)
    failed = []
    targets = (
        [args.experiment_id]
        if args.command == "run"
        else all_experiment_ids()
    )
    for experiment_id in targets:
        report = run_experiment(experiment_id, profile)
        report.print()
        out = getattr(args, "out", None)
        if out:
            for name in report.save_csv(out):
                print(f"wrote {out}/{name}")
        if not report.all_checks_pass():
            failed.append(experiment_id)
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
