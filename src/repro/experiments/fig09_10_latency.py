"""Figures 9 & 10: Async-fork vs ODF on Redis and KeyDB, 1-64 GiB.

The headline result: Async-fork beats ODF everywhere, and the gap widens
with instance size.  Paper anchors at 64 GiB — p99 3.96 ms (ODF) vs
1.5 ms (Async) on Redis, 3.24 ms vs 1.03 ms on KeyDB; at 1 GiB the max
latency drops from 13.93 ms to 5.43 ms (Redis) and 10.24 ms to 5.64 ms
(KeyDB).
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import reduction, run_point, sweep_sizes
from repro.experiments.registry import register
from repro.metrics.report import Comparison, ExperimentReport, Table

PAPER = {
    ("redis", "odf", "p99"): 3.96,
    ("redis", "async", "p99"): 1.5,
    ("keydb", "odf", "p99"): 3.24,
    ("keydb", "async", "p99"): 1.03,
    ("redis", "odf", "max1"): 13.93,
    ("redis", "async", "max1"): 5.43,
    ("keydb", "odf", "max1"): 10.24,
    ("keydb", "async", "max1"): 5.64,
}


@register("fig9-10", "Snapshot-query latency: ODF vs Async-fork")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Sweep sizes x {odf, async} x {redis, keydb}."""
    report = ExperimentReport(
        "fig9-10", "p99 (Fig.9) and max (Fig.10) of snapshot queries"
    )
    sizes = sweep_sizes(profile)
    engines = ("redis", "keydb")
    points = {
        (engine, size, method): run_point(
            profile, size, method, engine=engine
        )
        for engine in engines
        for size in sizes
        for method in ("odf", "async")
    }

    for stat, fig in (("p99", "Figure 9"), ("max", "Figure 10")):
        table = Table(
            f"{fig} — {stat} latency of snapshot queries (ms)",
            ["size GiB", "Redis ODF", "Redis Async",
             "KeyDB ODF", "KeyDB Async"],
        )
        for size in sizes:
            row = [size]
            for engine in engines:
                for method in ("odf", "async"):
                    point = points[(engine, size, method)]
                    value = (
                        point.snap_p99_ms if stat == "p99"
                        else point.snap_max_ms
                    )
                    row.append(value)
            table.add_row(*row)
        report.add_table(table)

    big = max(sizes)
    for engine in engines:
        odf = points[(engine, big, "odf")]
        asy = points[(engine, big, "async")]
        report.comparisons.append(
            Comparison(
                f"{engine} ODF p99 @64GiB",
                PAPER[(engine, "odf", "p99")], odf.snap_p99_ms,
                            )
        )
        report.comparisons.append(
            Comparison(
                f"{engine} Async p99 @64GiB",
                PAPER[(engine, "async", "p99")], asy.snap_p99_ms,
            )
        )
        report.comparisons.append(
            Comparison(
                f"{engine} p99 reduction @64GiB (paper 61.9/68.3%)",
                61.9 if engine == "redis" else 68.3,
                reduction(odf.snap_p99_ms, asy.snap_p99_ms),
                unit="%",
            )
        )

    for engine in engines:
        report.check(
            f"{engine}: Async-fork p99 <= ODF p99 at every size >= 4GiB",
            all(
                points[(engine, s, "async")].snap_p99_ms
                <= points[(engine, s, "odf")].snap_p99_ms
                for s in sizes
                if s >= 4
            ),
        )
        report.check(
            f"{engine}: Async-fork max <= ODF max at every size >= 4GiB",
            all(
                points[(engine, s, "async")].snap_max_ms
                <= points[(engine, s, "odf")].snap_max_ms
                for s in sizes
                if s >= 4
            ),
        )
        gap_small = (
            points[(engine, min(sizes), "odf")].snap_p99_ms
            - points[(engine, min(sizes), "async")].snap_p99_ms
        )
        gap_big = (
            points[(engine, big, "odf")].snap_p99_ms
            - points[(engine, big, "async")].snap_p99_ms
        )
        report.check(
            f"{engine}: the absolute p99 gap widens with size",
            gap_big > gap_small,
        )
    return report
