"""figx-live: the paper's latency spike measured on a real TCP wire.

Every other experiment reads the *simulated* clock.  This one closes the
loop end to end: it boots :class:`~repro.net.app.ReproServer` on a real
socket, drives it with concurrent asyncio RESP clients issuing paced
GET/SET traffic while a snapshotter fires ``BGSAVE`` periodically, and
measures **wall-clock** round-trip latency at the client — the number a
``redis-benchmark`` user would see.

The clock bridge converts each simulated kernel-busy window (the fork
call, scaled to ``sim_size_gb`` by the cost emulation) into a real stall
of the server's event loop, so the default fork's page-table copy shows
up as a tens-of-milliseconds p99/p100 spike on the wire while
Async-fork's sub-millisecond call stays near the noise floor (Figs. 1,
9, 10 — here reproduced with real sockets instead of simulated
queueing).

The server runs in its *own thread* with its own event loop.  That is
not an implementation detail: if clients shared the server's loop, a
stall would freeze their clocks too and the spike would vanish from the
percentiles (coordinated omission).  With an independent client loop,
every request issued while the server is "in the kernel" measures the
remainder of the stall — exactly what an external ``redis-cli`` would
see.  The CI ``net-smoke`` job runs the same load loop against an
out-of-process ``repro-serve``.

Because it measures the host clock over real sockets, this experiment is
*not* byte-deterministic: latencies vary run to run; only the shape
checks (ordering, spike magnitude) are stable.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass

from repro.config import SimulationProfile
from repro.experiments.registry import register
from repro.metrics.report import ExperimentReport, Table
from repro.net.app import ReproServer, ServerConfig, build_backend
from repro.net.bridge import ClockBridge
from repro.net.client import AsyncRespClient

#: Concurrent closed-loop clients (the paper's latency figures use
#: small client counts; 8 keeps a 2-vCPU CI runner honest).
CLIENTS = 8
#: Per-client think time between requests; paces the load so samples
#: keep arriving *during* a fork stall instead of piling up behind it.
THINK_S = 0.01
#: Period of the background snapshotter's BGSAVE attempts.
BGSAVE_PERIOD_S = 0.25


@dataclass
class LoadStats:
    """Client-side digest of one paced load run."""

    latencies_ms: list
    bgsaves: int

    def percentile(self, q: float) -> float:
        ms = sorted(self.latencies_ms)
        return ms[min(len(ms) - 1, int(len(ms) * q))]


@dataclass
class LiveResult:
    """Wire-latency digest for one engine."""

    engine: str
    samples: int
    p50_ms: float
    p99_ms: float
    max_ms: float
    bgsaves: int
    stalls: int
    stall_wall_ms: float


async def drive_load(
    host: str,
    port: int,
    duration_s: float,
    keys: int,
    clients: int = CLIENTS,
    think_s: float = THINK_S,
    bgsave_period_s: float = BGSAVE_PERIOD_S,
) -> LoadStats:
    """Paced GET/SET workers + a periodic BGSAVE snapshotter.

    Also used by ``scripts/net_smoke.py`` against an out-of-process
    ``repro-serve``.  Returns every client-observed round-trip latency.
    """
    latencies: list = []
    stop = asyncio.Event()
    bgsaves = 0

    async def worker(index: int) -> None:
        client = await AsyncRespClient.connect(host, port)
        n = 0
        while not stop.is_set():
            t0 = time.perf_counter()  # lint: allow(wall-clock)
            if n % 2:
                await client.execute(
                    "SET", f"live:{index}:{n % 64}", b"x" * 64
                )
            else:
                await client.execute("GET", b"key:%012d" % (n % keys))
            wall_ms = (
                time.perf_counter() - t0  # lint: allow(wall-clock)
            ) * 1e3
            latencies.append(wall_ms)
            n += 1
            await asyncio.sleep(think_s)
        await client.close()

    async def snapshotter() -> None:
        nonlocal bgsaves
        client = await AsyncRespClient.connect(host, port)
        while not stop.is_set():
            reply = await client.execute("BGSAVE", check=False)
            if not isinstance(reply, Exception):
                bgsaves += 1
            await asyncio.sleep(bgsave_period_s)
        await client.close()

    workers = [asyncio.create_task(worker(i)) for i in range(clients)]
    await asyncio.sleep(0.15)  # warm up before the first fork
    snap = asyncio.create_task(snapshotter())
    await asyncio.sleep(duration_s)
    stop.set()
    await asyncio.gather(*workers, snap)
    return LoadStats(latencies_ms=latencies, bgsaves=bgsaves)


def measure_engine(
    engine: str, duration_s: float, config: ServerConfig = None
) -> LiveResult:
    """Serve one engine (own thread, own loop); measure from outside."""
    if config is None:
        config = ServerConfig(engine=engine, port=0)
    backend = build_backend(config)
    bridge = ClockBridge(
        backend.engine.clock,
        scale=config.time_scale,
        min_stall_ns=config.min_stall_ns,
    )
    server = ReproServer(backend, bridge, config)
    bound = threading.Event()
    address: dict = {}

    def _serve_thread() -> None:
        async def _amain() -> None:
            address["hp"] = await server.start()
            bound.set()
            await server.serve_until_shutdown()

        asyncio.run(_amain())

    thread = threading.Thread(
        target=_serve_thread, name=f"figx-live-{engine}", daemon=True
    )
    thread.start()
    if not bound.wait(timeout=10.0):
        raise RuntimeError(f"{engine}: server failed to bind")
    host, port = address["hp"]

    async def _drive() -> LoadStats:
        stats = await drive_load(host, port, duration_s, config.keys)
        # SHUTDOWN drops the connection without a reply and stops the
        # server loop — the polite way to end the thread.
        control = await AsyncRespClient.connect(host, port)
        try:
            await control.execute("SHUTDOWN", "NOSAVE", check=False)
        except ConnectionError:
            pass
        await control.close()
        return stats

    stats = asyncio.run(_drive())
    thread.join(timeout=10.0)
    if thread.is_alive():
        raise RuntimeError(f"{engine}: server thread failed to stop")

    return LiveResult(
        engine=engine,
        samples=len(stats.latencies_ms),
        p50_ms=stats.percentile(0.50),
        p99_ms=stats.percentile(0.99),
        max_ms=max(stats.latencies_ms),
        bgsaves=stats.bgsaves,
        stalls=bridge.metrics.get("stalls").value,
        stall_wall_ms=bridge.metrics.get("stall_wall_ns").value / 1e6,
    )


def _duration_for(profile: SimulationProfile) -> float:
    # Wall-clock budget per engine: long enough for several BGSAVE
    # cycles, short enough for the tier-1 suite.
    if profile.name in ("test", "tiny"):
        return 1.2
    if profile.name == "quick":
        return 2.0
    return 4.0


@register("figx-live", "Wire latency under BGSAVE on a live RESP server")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Serve each engine over TCP; compare client-observed latency."""
    report = ExperimentReport(
        "figx-live",
        "client-side wall-clock latency on a real socket, per fork "
        "engine, with periodic BGSAVE",
    )
    duration = _duration_for(profile)
    results = {
        engine: measure_engine(engine, duration)
        for engine in ("default", "odf", "async")
    }

    table = Table(
        "live wire latency (ms, wall clock) — "
        f"{CLIENTS} clients, BGSAVE every {BGSAVE_PERIOD_S:.2f}s",
        [
            "engine", "samples", "p50", "p99", "max",
            "bgsaves", "fork stalls", "stall wall ms",
        ],
    )
    for engine in ("default", "odf", "async"):
        r = results[engine]
        table.add_row(
            r.engine, r.samples, r.p50_ms, r.p99_ms, r.max_ms,
            r.bgsaves, r.stalls, r.stall_wall_ms,
        )
    report.add_table(table)

    default, odf, asy = (
        results["default"], results["odf"], results["async"]
    )
    report.check(
        "every engine completed BGSAVEs under load",
        all(r.bgsaves >= 1 for r in results.values()),
    )
    report.check(
        "default-fork wire p99 exceeds Async-fork's",
        default.p99_ms > asy.p99_ms,
    )
    report.check(
        "default-fork wire p99 exceeds ODF's",
        default.p99_ms > odf.p99_ms,
    )
    report.check(
        "the default fork stalls the wire for more total wall time",
        default.stall_wall_ms > asy.stall_wall_ms
        and default.stall_wall_ms > odf.stall_wall_ms,
    )
    report.check(
        "a default-fork stall is visible at the max (>= 10 ms spike)",
        default.max_ms >= 10.0,
    )
    return report
