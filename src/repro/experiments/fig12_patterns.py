"""Figure 12: sensitivity to read/write patterns (memtier, 8 GiB).

Four workloads — Set:Get 1:1 and 1:10, each under uniform and Gaussian key
access.  Async-fork keeps its edge everywhere but the benefit shrinks for
GET-heavy workloads (fewer PTEs are modified) and for the Gaussian pattern
(repeated keys dirty fewer distinct tables, so ODF faults less too).
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import run_point
from repro.experiments.registry import register
from repro.metrics.report import ExperimentReport, Table

SIZE_GB = 8
WORKLOADS = (
    ("1:1", "uniform", "1:1 (Uni.)"),
    ("1:1", "gaussian", "1:1 (Gau.)"),
    ("1:10", "uniform", "1:10 (Uni.)"),
    ("1:10", "gaussian", "1:10 (Gau.)"),
)


@register("fig12", "Latency under different read/write patterns (8GiB)")
def run(profile: SimulationProfile) -> ExperimentReport:
    """memtier-style ratio x pattern grid on an 8 GiB instance."""
    report = ExperimentReport(
        "fig12", "p99/max of snapshot queries under memtier workloads"
    )
    table = Table(
        "Figure 12 — 8GiB instance, memtier workloads",
        ["workload", "ODF p99", "Async p99", "ODF max", "Async max",
         "ODF faults", "Async syncs"],
    )
    points = {}
    for ratio, pattern, label in WORKLOADS:
        odf = run_point(
            profile, SIZE_GB, "odf", ratio=ratio, pattern=pattern
        )
        asy = run_point(
            profile, SIZE_GB, "async", ratio=ratio, pattern=pattern
        )
        points[label] = (odf, asy)
        table.add_row(
            label, odf.snap_p99_ms, asy.snap_p99_ms, odf.snap_max_ms,
            asy.snap_max_ms, odf.table_faults, asy.proactive_syncs,
        )
    report.add_table(table)

    report.check(
        "Async-fork p99 <= ODF p99 for every workload",
        all(asy.snap_p99_ms <= odf.snap_p99_ms
            for odf, asy in points.values()),
    )
    report.check(
        "write-heavy (1:1) faults more than read-heavy (1:10) under ODF",
        points["1:1 (Uni.)"][0].table_faults
        > points["1:10 (Uni.)"][0].table_faults,
    )
    report.check(
        "Gaussian pattern touches fewer tables than uniform under ODF",
        points["1:1 (Gau.)"][0].table_faults
        < points["1:1 (Uni.)"][0].table_faults,
    )
    report.check(
        "Gaussian pattern does not need more proactive syncs than uniform",
        # Sync counts are tiny at 8GiB (the copy window is ~10ms), so
        # allow counting noise of a few events.
        points["1:1 (Gau.)"][1].proactive_syncs
        <= points["1:1 (Uni.)"][1].proactive_syncs + 5,
    )
    return report
