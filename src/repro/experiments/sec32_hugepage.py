"""§3.2's huge-page analysis: why THP cannot fix the fork spike.

Not a numbered figure, but the paper's motivation section makes three
quantitative claims about transparent huge pages that this experiment
verifies against the model:

1. THP *does* make ``fork`` cheap — the page table shrinks by ~512x
   (one PMD entry instead of 512 PTEs per 2 MiB);
2. the page-fault cost explodes — the cited study measured 3.6 µs
   (regular) vs 378 µs (huge), a ~100x penalty, and post-fork CoW
   amplifies every first write to a 2 MiB copy;
3. memory bloats for sparse access — the cited Redis experiment grew
   from 12.2 GB to 20.7 GB (~1.7x) because applications rarely fill
   whole huge pages.

And the §4.2 corollary: Async-fork refuses THP processes because the PMD
R/W bit — its copied-marker — is not free there.
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.core.async_fork import AsyncFork
from repro.errors import ConfigurationError
from repro.experiments.registry import register
from repro.kernel.costs import DEFAULT_COSTS
from repro.kernel.task import Process
from repro.mem.frames import FrameAllocator
from repro.mem.hugepage import HUGE_PAGE_SIZE
from repro.metrics.report import Comparison, ExperimentReport, Table
from repro.sim.compact import CompactInstance
from repro.units import PAGE_SIZE


@register("sec3-thp", "Huge pages: cheap fork, costly faults, bloat")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Quantify §3.2's three THP claims + the §4.2 conflict."""
    report = ExperimentReport(
        "sec3-thp", "why transparent huge pages are ruled out"
    )
    costs = DEFAULT_COSTS

    # 1. Page-table shrinkage -> cheap fork.
    table = Table(
        "claim 1 — fork cost with 4KiB pages vs THP",
        ["size GiB", "4KiB-page fork ms", "THP fork ms", "shrinkage"],
    )
    shrink = {}
    for size in (8, 64):
        counts = CompactInstance(size).level_counts()
        regular = costs.default_fork_ns(counts)
        thp_counts = {
            "pgd": counts["pgd"],
            "pud": counts["pud"],
            "pmd": counts["pmd"],  # one entry per 2MiB, now huge
            "pte": 0,
        }
        thp = costs.default_fork_ns(thp_counts)
        shrink[size] = regular / thp
        table.add_row(size, regular / 1e6, thp / 1e6, f"{shrink[size]:.0f}x")
    report.add_table(table)
    report.check(
        "THP shrinks the fork cost by more than an order of magnitude",
        all(v > 10 for v in shrink.values()),
    )

    # 2. Fault penalty and CoW amplification.
    fault_ratio = costs.huge_fault_ns / (
        costs.fault_overhead_ns + costs.page_copy_ns
    )
    report.comparisons.append(
        Comparison("huge/regular fault cost ratio", 105.0, fault_ratio,
                   unit="x", note="paper cites 3.6us -> 378us")
    )
    report.check(
        "huge faults are ~two orders of magnitude dearer",
        50 <= fault_ratio <= 200,
    )

    frames = FrameAllocator()
    process = Process(frames, name="thp-cow")
    vma = process.mm.mmap_huge(HUGE_PAGE_SIZE)
    process.mm.write_memory(vma.start, b"seed")
    from repro.kernel.forks.default import DefaultFork

    DefaultFork().fork(process)
    before = process.mm.stats["cow_copies"]
    process.mm.write_memory(vma.start, b"x")  # one byte
    amplified = process.mm.stats["cow_copies"] == before + 1
    report.check(
        "one post-fork byte write CoW-copies a whole 2MiB huge page",
        amplified,
    )

    # 3. Memory bloat under sparse access.
    bloat = Table(
        "claim 3 — resident memory for 1000 sparse 64B touches",
        ["page size", "resident MiB"],
    )
    touches = 1000
    stride = 3 * HUGE_PAGE_SIZE // 2  # never two touches per huge page

    frames = FrameAllocator()
    sparse_regular = Process(frames, name="sparse-4k")
    r_vma = sparse_regular.mm.mmap(touches * stride)
    for i in range(touches):
        sparse_regular.mm.write_memory(r_vma.start + i * stride, b"x" * 64)
    regular_resident = sparse_regular.mm.rss * PAGE_SIZE

    frames = FrameAllocator()
    sparse_thp = Process(frames, name="sparse-thp")
    t_vma = sparse_thp.mm.mmap_huge(touches * 2 * HUGE_PAGE_SIZE)
    for i in range(touches):
        sparse_thp.mm.write_memory(
            t_vma.start + i * 2 * HUGE_PAGE_SIZE, b"x" * 64
        )
    thp_resident = sparse_thp.mm.rss * PAGE_SIZE

    bloat.add_row("4 KiB", regular_resident / 2**20)
    bloat.add_row("2 MiB (THP)", thp_resident / 2**20)
    report.add_table(bloat)
    report.comparisons.append(
        Comparison("sparse-access bloat factor", 1.7,
                   thp_resident / regular_resident, unit="x",
                   note="paper cites Redis 12.2GB -> 20.7GB; worst-case "
                        "sparse access is far worse")
    )
    report.check(
        "sparse access bloats resident memory under THP",
        thp_resident > 10 * regular_resident,
    )

    # §4.2: the R/W-bit conflict.
    refused = False
    try:
        AsyncFork().fork(sparse_thp)
    except ConfigurationError:
        refused = True
    report.check(
        "Async-fork refuses a THP process (PMD R/W bit in use)", refused
    )
    return report
