"""Figure 16: Async-fork vs default fork in the production cloud.

The production evaluation rents a Redis instance (16 GB memory / 80 GB
SSD) and a client VM on the same cloud (3 Gb/s network); ODF is not
deployed there, so the baseline is the default fork.  Paper numbers:

    8 GB:  p99 33.29 ms -> 4.92 ms,  max 169.57 ms -> 24.63 ms
    16 GB: p99 155.69 ms -> 5.02 ms, max 415.19 ms -> 40.04 ms

The environment model adds a network RTT and virtualized-CPU service
inflation on top of the standard engine (see
:mod:`repro.sim.network`).
"""

from __future__ import annotations

from repro.config import SimulationProfile
from repro.experiments.common import reduction, run_point
from repro.experiments.registry import register
from repro.metrics.report import Comparison, ExperimentReport, Table

SIZES = (8, 16)
PAPER = {
    (8, "default", "p99"): 33.29,
    (8, "async", "p99"): 4.92,
    (8, "default", "max"): 169.57,
    (8, "async", "max"): 24.63,
    (16, "default", "p99"): 155.69,
    (16, "async", "p99"): 5.02,
    (16, "default", "max"): 415.19,
    (16, "async", "max"): 40.04,
}


@register("fig16", "Production cloud: default fork vs Async-fork")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Run the 8/16 GB production comparison."""
    report = ExperimentReport(
        "fig16", "snapshot-query latency in the production environment"
    )
    table = Table(
        "Figure 16 — production Redis cloud",
        ["size GB", "DEF p99", "Async p99", "DEF max", "Async max"],
    )
    points = {}
    for size in SIZES:
        deflt = run_point(profile, size, "default", production=True)
        asy = run_point(profile, size, "async", production=True)
        points[size] = (deflt, asy)
        table.add_row(
            size, deflt.snap_p99_ms, asy.snap_p99_ms,
            deflt.snap_max_ms, asy.snap_max_ms,
        )
    report.add_table(table)

    for size in SIZES:
        deflt, asy = points[size]
        report.comparisons.extend(
            [
                Comparison(f"DEF p99 @{size}GB",
                           PAPER[(size, "default", "p99")],
                           deflt.snap_p99_ms),
                Comparison(f"Async p99 @{size}GB",
                           PAPER[(size, "async", "p99")],
                           asy.snap_p99_ms),
                Comparison(f"p99 reduction @{size}GB",
                           reduction(PAPER[(size, "default", "p99")],
                                     PAPER[(size, "async", "p99")]),
                           reduction(deflt.snap_p99_ms, asy.snap_p99_ms),
                           unit="%"),
            ]
        )

    report.check(
        "Async-fork slashes production p99 at both sizes (>=70%)",
        all(
            reduction(points[s][0].snap_p99_ms, points[s][1].snap_p99_ms)
            >= 70.0
            for s in SIZES
        ),
    )
    report.check(
        "Async-fork slashes production max at both sizes (>=50%)",
        all(
            reduction(points[s][0].snap_max_ms, points[s][1].snap_max_ms)
            >= 50.0
            for s in SIZES
        ),
    )
    report.check(
        "default fork gets worse with size, Async-fork stays flat-ish",
        points[16][0].snap_p99_ms > points[8][0].snap_p99_ms
        and points[16][1].snap_p99_ms < 0.5 * points[16][0].snap_p99_ms,
    )
    return report
