"""Figures 17-19: processing throughput during the snapshot.

Figures 17 (Redis) and 18 (KeyDB) plot throughput in 50 ms windows on a
16 GiB instance: it collapses right after the fork and recovers gradually
— much faster with Async-fork than with ODF (paper worst-case windows:
17,592 vs 42,980 QPS on Redis).  Figure 19 sweeps sizes and reports the
*minimum* windowed throughput: Async-fork raises it by 2.44x on average
(up to 2.9x) on Redis and 1.6x (up to 2.69x) on KeyDB.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationProfile
from repro.experiments.common import run_point, sweep_sizes
from repro.experiments.registry import register
from repro.metrics.report import Comparison, ExperimentReport, Table
from repro.units import SEC

TIMELINE_SIZE_GB = 16


@register("fig17-19", "Throughput during the snapshot process")
def run(profile: SimulationProfile) -> ExperimentReport:
    """Timeline tables for 16 GiB plus the min-throughput sweep."""
    report = ExperimentReport(
        "fig17-19", "windowed throughput during snapshots"
    )

    # Figures 17/18: timeline around the fork, 16 GiB.
    for engine, fig in (("redis", "Figure 17"), ("keydb", "Figure 18")):
        table = Table(
            f"{fig} — 16GiB {engine}: QPS in 50ms windows around the fork",
            ["t-fork (s)", "ODF", "Async-fork"],
        )
        odf = run_point(
            profile, TIMELINE_SIZE_GB, "odf", engine=engine,
            keep_throughput=True,
        )
        asy = run_point(
            profile, TIMELINE_SIZE_GB, "async", engine=engine,
            keep_throughput=True,
        )
        rows = _timeline_rows(odf, asy)
        for row in rows:
            table.add_row(*row)
        report.add_table(table)

    # Figure 19: minimum throughput across sizes.
    sizes = sweep_sizes(profile)
    fig19 = Table(
        "Figure 19 — minimum windowed throughput during the snapshot",
        ["size GiB", "Redis ODF", "Redis Async", "KeyDB ODF",
         "KeyDB Async"],
    )
    mins = {}
    for size in sizes:
        row = [size]
        for engine in ("redis", "keydb"):
            for method in ("odf", "async"):
                point = run_point(profile, size, method, engine=engine)
                mins[(engine, size, method)] = point.min_qps
                row.append(point.min_qps)
        fig19.add_row(*row)
    report.add_table(fig19)

    r16_odf = mins.get(("redis", 16, "odf"), float("nan"))
    r16_asy = mins.get(("redis", 16, "async"), float("nan"))
    report.comparisons.extend(
        [
            Comparison("Redis min QPS @16GiB, ODF", 17_592, r16_odf,
                       unit="qps"),
            Comparison("Redis min QPS @16GiB, Async", 42_980, r16_asy,
                       unit="qps"),
        ]
    )

    improvements = [
        mins[("redis", s, "async")] / mins[("redis", s, "odf")]
        for s in sizes
        if mins[("redis", s, "odf")] > 0
    ]
    # A method-neutral hiccup falling inside one method's (slightly
    # longer) snapshot window can nudge a single min sample, so allow 10%
    # measurement slack.
    report.check(
        "Async-fork min throughput >= ODF's at every size (Redis)",
        all(
            mins[("redis", s, "async")] >= 0.9 * mins[("redis", s, "odf")]
            for s in sizes
        ),
    )
    report.check(
        "Async-fork min throughput >= ODF's at every size (KeyDB)",
        all(
            mins[("keydb", s, "async")] >= 0.9 * mins[("keydb", s, "odf")]
            for s in sizes
        ),
    )
    report.check(
        "Redis min-throughput improvement reaches >=1.05x somewhere "
        "(paper: up to 2.9x; our engine avoids deep saturation, see "
        "EXPERIMENTS.md)",
        max(improvements) >= 1.05 if improvements else False,
    )
    return report


def _timeline_rows(odf, asy) -> list[tuple]:
    """Rows of (seconds-from-fork, odf qps, async qps) near the fork."""
    rows = []
    if odf.throughput is None or asy.throughput is None:
        return rows
    fork_odf = odf.snapshot_start_ns
    fork_asy = asy.snapshot_start_ns
    offsets = np.arange(-0.2, 2.01, 0.2)  # seconds relative to the fork
    for offset in offsets:
        rows.append(
            (
                round(float(offset), 1),
                _qps_at(odf.throughput, fork_odf + offset * SEC),
                _qps_at(asy.throughput, fork_asy + offset * SEC),
            )
        )
    return rows


def _qps_at(series, t_ns: float) -> float:
    """Throughput of the window containing ``t_ns``."""
    if len(series) == 0:
        return float("nan")
    idx = int(np.searchsorted(series.starts_ns, t_ns, side="right")) - 1
    if idx < 0 or idx >= len(series.qps):
        return float("nan")
    return float(series.qps[idx])
