"""The pluggable checker framework behind ``repro-analyze``.

Every analysis the repo has grown — the determinism lint, lockdep and
its static companion, MMSAN, the happens-before race detector — plugs
in here as a :class:`Checker` with a name, a description and a ``run``
method, registered via :func:`register`.  ``repro-analyze`` (see
:mod:`repro.analysis.cli`) selects checkers by name, runs them against
the tree and the seeded workloads in :mod:`repro.analysis.workloads`,
and renders one deterministic report.

Determinism is a hard requirement: the same seed must produce a
byte-identical report (that is what lets CI diff them).  Checkers must
therefore only emit content derived from the source tree and the
seeded workloads — no wall-clock timestamps, no raw ``id()`` values
(see :func:`_sanitize`), no absolute paths (:func:`relpath`).

Severities: ``error`` findings fail the CLI (exit 1); ``warning`` and
``note`` inform without gating.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis import hooks


class Severity(enum.Enum):
    """How bad a finding is; order matters (ERROR gates the CLI)."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One checker finding, ready for deterministic rendering."""

    checker: str
    severity: Severity
    rule: str
    message: str
    #: ``path:line`` when source-anchored, else a context label.
    location: str = ""

    def format(self) -> str:
        where = f" @ {self.location}" if self.location else ""
        return (
            f"[{self.severity.value}] {self.checker}/{self.rule}{where}: "
            f"{self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
            "location": self.location,
        }


@dataclass
class CheckResult:
    """What one checker produced."""

    checker: str
    description: str
    findings: list[Finding] = field(default_factory=list)
    #: Deterministic counters proving the checker actually looked at
    #: something (events observed, files scanned, workloads run).
    stats: dict = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "description": self.description,
            "findings": [f.to_dict() for f in self.findings],
            "stats": self.stats,
        }


class Checker:
    """Base class: subclasses set ``name``/``description``, implement run."""

    name = "?"
    description = ""

    def run(self, root: Path, seed: int) -> CheckResult:
        raise NotImplementedError


#: name -> checker class, in registration order.
REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to :data:`REGISTRY`."""
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def relpath(path: str, root: Path) -> str:
    """Path relative to the repo root (deterministic across machines)."""
    try:
        return str(Path(path).resolve().relative_to(root.resolve()))
    except ValueError:
        return path


_ID_KEY = re.compile(r"\[\d{6,}\]")


def _sanitize(text: str) -> str:
    """Strip raw ``id()``-sized lock keys out of witness strings."""
    return _ID_KEY.sub("[#]", text)


# ---------------------------------------------------------------------------
# the checkers
# ---------------------------------------------------------------------------


@register
class LintChecker(Checker):
    name = "lint"
    description = "determinism/error-hygiene AST lint over src and scripts"

    def run(self, root: Path, seed: int) -> CheckResult:
        from repro.analysis.lint import lint_paths

        targets = [root / "src" / "repro", root / "scripts"]
        findings = lint_paths(p for p in targets if p.exists())
        result = CheckResult(self.name, self.description)
        for f in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            result.findings.append(Finding(
                checker=self.name,
                severity=Severity.ERROR,
                rule=f.rule,
                message=f.message,
                location=f"{relpath(f.path, root)}:{f.line}",
            ))
        result.stats["paths"] = [relpath(str(p), root) for p in targets]
        return result


@register
class LockChecker(Checker):
    name = "locks"
    description = (
        "static lock-order graph cross-checked against runtime lockdep"
    )

    #: kind -> severity for the cross-check findings.
    _SEVERITIES = {
        "static-inversion": Severity.ERROR,
        "canonical-violation": Severity.ERROR,
        "dynamic-only-edge": Severity.WARNING,
        "static-only-edge": Severity.NOTE,
    }

    def run(self, root: Path, seed: int) -> CheckResult:
        from repro.analysis import static_locks, workloads
        from repro.analysis.lockdep import LockDep

        graph = static_locks.build_graph([root / "src" / "repro"])
        dep = LockDep()
        dep.install()
        try:
            for engine in workloads.ENGINES:
                workloads.run_engine(engine, seed=seed)
            workloads.run_migration()
        finally:
            dep.uninstall()

        result = CheckResult(self.name, self.description)
        for violation in dep.violations:
            count = dep.violation_counts.get(
                (violation.kind, violation.first, violation.second), 1
            )
            result.findings.append(Finding(
                checker=self.name,
                severity=Severity.ERROR,
                rule=violation.kind,
                message=_sanitize(
                    f"{violation.detail} (witnessed {count}x)"
                ),
                location=f"{violation.first} vs {violation.second}",
            ))
        runtime_edges = {
            edge: _sanitize(witness) for edge, witness in dep.edges.items()
        }
        for f in static_locks.cross_check(graph, runtime_edges):
            result.findings.append(Finding(
                checker=self.name,
                severity=self._SEVERITIES[f["kind"]],
                rule=f["kind"],
                message=_sanitize(
                    f["detail"].replace(f"{root.resolve()}/", "")
                ),
                location=f"{f['first']} -> {f['second']}",
            ))
        result.stats.update({
            "functions_with_locks": sorted(graph.acquisitions),
            "static_edges": sorted(
                f"{a} -> {b}" for (a, b) in graph.edges
            ),
            "runtime_edges": sorted(
                f"{a} -> {b}" for (a, b) in dep.edges
            ),
        })
        return result


@register
class MmsanChecker(Checker):
    name = "mmsan"
    description = "memory-management sanitizer audit after each engine"

    def run(self, root: Path, seed: int) -> CheckResult:
        from repro.analysis import workloads
        from repro.analysis.mmsan import Mmsan

        result = CheckResult(self.name, self.description)
        audited = 0
        for engine in workloads.ENGINES:
            # Catch every address space the workload creates (parent and
            # child share one allocator) so the audit sees both sides.
            created: list = []
            hooks.MM_HOOKS.append(created.append)
            try:
                res = workloads.run_engine(engine, seed=seed)
            finally:
                hooks.MM_HOOKS.remove(created.append)
            san = Mmsan(res.child.mm.frames)
            for mm in created:
                if mm.frames is res.child.mm.frames:
                    san.track(mm)
                    audited += 1
            for violation in san.audit():
                result.findings.append(Finding(
                    checker=self.name,
                    severity=Severity.ERROR,
                    rule=violation.rule,
                    message=str(violation),
                    location=f"engine:{engine}",
                ))
        result.stats["engines"] = list(workloads.ENGINES)
        result.stats["address_spaces_audited"] = audited
        return result


@register
class RaceChecker(Checker):
    name = "races"
    description = (
        "vector-clock happens-before race detection over the seeded "
        "workloads (clean engines + chaos storm + page migration)"
    )

    def run(self, root: Path, seed: int) -> CheckResult:
        from repro.analysis import race, workloads

        result = CheckResult(self.name, self.description)
        event_totals: dict[str, int] = {}
        scenarios: list[tuple[str, Callable]] = [
            *[
                (f"engine:{name}",
                 lambda name=name: workloads.run_engine(name, seed=seed))
                for name in workloads.ENGINES
            ],
            ("chaos-storm", lambda: workloads.run_chaos(seed=seed)),
            ("page-migration", workloads.run_migration),
        ]
        for label, run in scenarios:
            with race.detecting() as detector:
                run()
            for space, n in sorted(detector.event_counts.items()):
                event_totals[space] = event_totals.get(space, 0) + n
            for report in detector.races:
                result.findings.append(Finding(
                    checker=self.name,
                    severity=Severity.ERROR,
                    rule=f"race-{report.space}",
                    message=report.format(),
                    location=label,
                ))
        result.stats["scenarios"] = [label for label, _ in scenarios]
        result.stats["events"] = event_totals
        result.stats["seed"] = seed
        return result


# ---------------------------------------------------------------------------
# running and rendering
# ---------------------------------------------------------------------------


def run_checks(
    names: Iterable[str], root: Path, seed: int = 7
) -> list[CheckResult]:
    """Instantiate and run the named checkers, in registry order."""
    wanted = list(names)
    unknown = [n for n in wanted if n not in REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown checker(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(REGISTRY)}"
        )
    results = []
    for name, cls in REGISTRY.items():
        if name not in wanted:
            continue
        hooks.clear()
        try:
            results.append(cls().run(root, seed))
        finally:
            hooks.clear()
    return results


def report_dict(results: list[CheckResult], seed: int) -> dict:
    """The canonical report mapping (renderers serialize this)."""
    return {
        "tool": "repro-analyze",
        "seed": seed,
        "errors": sum(r.errors for r in results),
        "checks": [r.to_dict() for r in results],
    }


def render_json(results: list[CheckResult], seed: int) -> str:
    return json.dumps(
        report_dict(results, seed), indent=2, sort_keys=True
    ) + "\n"


def render_sarif(results: list[CheckResult], seed: int) -> str:
    """A minimal SARIF 2.1.0 log (one run, one result per finding)."""
    rules: dict[str, dict] = {}
    sarif_results = []
    for result in results:
        for f in result.findings:
            rule_id = f"{f.checker}/{f.rule}"
            rules.setdefault(rule_id, {
                "id": rule_id,
                "shortDescription": {"text": result.description},
            })
            entry: dict = {
                "ruleId": rule_id,
                "level": f.severity.value,
                "message": {"text": f.message},
            }
            path, sep, line = f.location.rpartition(":")
            if sep and line.isdigit():
                entry["locations"] = [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": path},
                        "region": {"startLine": int(line)},
                    },
                }]
            elif f.location:
                entry["locations"] = [{
                    "logicalLocations": [{"name": f.location}],
                }]
            sarif_results.append(entry)
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analyze",
                    "rules": sorted(rules.values(), key=lambda r: r["id"]),
                },
            },
            "properties": {"seed": seed},
            "results": sarif_results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


def render_text(results: list[CheckResult], seed: int) -> str:
    lines = [f"repro-analyze (seed={seed})"]
    for result in results:
        status = "ok" if result.errors == 0 else f"{result.errors} error(s)"
        lines.append(f"== {result.checker}: {status}")
        for f in result.findings:
            lines.append(f"  {f.format()}")
        for key, value in sorted(result.stats.items()):
            lines.append(f"  . {key}: {value}")
    total = sum(r.errors for r in results)
    lines.append(
        f"{total} error(s) across {len(results)} checker(s)"
    )
    return "\n".join(lines) + "\n"
