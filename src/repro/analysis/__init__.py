"""Correctness tooling for the fork simulator.

Three coordinated checkers plus a determinism lint:

* :mod:`repro.analysis.mmsan` — MMSAN, a runtime invariant auditor for
  the memory-management substrate (mapcounts, CoW write protection, the
  async-fork PMD copied-marker state machine, frame leaks, stale TLB
  entries);
* :mod:`repro.analysis.oracle` — the snapshot-consistency oracle that
  fingerprints a parent at fork-call time and diffs the child's
  materialized snapshot against it;
* :mod:`repro.analysis.lockdep` — lockdep-lite, an acquisition-order
  tracker for the simulated locks;
* :mod:`repro.analysis.lint` — an AST lint forbidding wall-clock reads,
  unseeded randomness and generic exceptions inside the library.

:mod:`repro.analysis.runtime` wires the runtime checkers into the fork
engines behind the ``REPRO_MMSAN=1`` environment flag (or the pytest
``--mmsan`` option).  This package's import stays lazy so the low-level
``mem``/``kernel`` modules can import :mod:`repro.analysis.hooks`
without cycles.
"""

from __future__ import annotations

_LAZY = {
    "Mmsan": "repro.analysis.mmsan",
    "MmsanViolation": "repro.analysis.mmsan",
    "SnapshotOracle": "repro.analysis.oracle",
    "SnapshotMismatch": "repro.analysis.oracle",
    "LockDep": "repro.analysis.lockdep",
    "LockOrderViolation": "repro.analysis.lockdep",
    "LintFinding": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
