"""Static lock-order extraction: the AST companion to lockdep.

Runtime lockdep (:mod:`repro.analysis.lockdep`) witnesses the lock
orders a particular schedule happened to execute.  This pass reads the
*source*: for every function in the tree it extracts the sequence of
simulated-lock acquisitions —

* ``X.trylock()``  — the PTE-table page lock (:data:`hooks.PAGE_LOCK`),
* ``X.lock()``     — the async-fork two-way pointer,
* ``with ....kernel_section(...)`` — the kernel-section bracket —

and builds a static lock-order graph: an edge ``A -> B`` means some
function acquires class ``B`` while (lexically) still holding class
``A``.  :func:`cross_check` then compares the two views:

* a cycle between classes in the static graph is an inversion waiting
  for the right schedule;
* an edge witnessed at runtime but absent statically means the order is
  composed *across* functions (caller holds ``A``, callee takes ``B``)
  — exactly the pattern a per-function reviewer cannot see;
* a static edge never witnessed at runtime is an untested lock path.

The extraction is an approximation: a ``trylock`` is considered held
from the call until an ``unlock()`` on the same receiver text (or the
function's end), which matches how every call site in the tree is
written — the loser of a trylock backs off immediately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis import hooks

#: The repo's documented hierarchy (lockdep's docstring, DESIGN.md):
#: earlier classes may hold while acquiring later ones, never reverse.
CANONICAL_ORDER = (
    hooks.TWO_WAY_POINTER,
    hooks.KERNEL_SECTION,
    hooks.PAGE_LOCK,
)


@dataclass(frozen=True)
class StaticAcquisition:
    """One lock acquisition found in source."""

    lock_class: str
    line: int
    receiver: str

    def format(self) -> str:
        return f"{self.lock_class}({self.receiver}) at line {self.line}"


@dataclass
class StaticLockGraph:
    """Per-function acquisition sequences and the derived order graph."""

    #: ``qualname -> acquisitions in lexical order``; only functions
    #: that acquire at least one lock appear.
    acquisitions: dict[str, list[StaticAcquisition]] = field(
        default_factory=dict
    )
    #: ``(first_class, second_class) -> sorted witnesses`` (the second
    #: class was acquired while the first was held, in one function).
    edges: dict[tuple[str, str], list[str]] = field(default_factory=dict)

    def add_edge(self, first: str, second: str, witness: str) -> None:
        witnesses = self.edges.setdefault((first, second), [])
        if witness not in witnesses:
            witnesses.append(witness)
            witnesses.sort()

    def inversions(self) -> list[tuple[str, str]]:
        """Class pairs ordered both ways somewhere in the source."""
        return sorted(
            (a, b)
            for (a, b) in self.edges
            if a < b and (b, a) in self.edges
        )

    def canonical_violations(self) -> list[tuple[str, str]]:
        """Static edges contradicting :data:`CANONICAL_ORDER`."""
        rank = {name: i for i, name in enumerate(CANONICAL_ORDER)}
        return sorted(
            (a, b)
            for (a, b) in self.edges
            if a in rank and b in rank and rank[a] > rank[b]
        )


class _FunctionScanner:
    """Lexical walk of one function body tracking held lock classes."""

    def __init__(self, graph: StaticLockGraph, qualname: str, path: str) -> None:
        self.graph = graph
        self.qualname = qualname
        self.path = path
        #: Currently held ``(lock_class, receiver_text)``, oldest first.
        self.held: list[tuple[str, str]] = []
        self.seq: list[StaticAcquisition] = []

    # -- recording -------------------------------------------------------

    def _acquire(self, lock_class: str, receiver: str, line: int) -> None:
        acq = StaticAcquisition(lock_class, line, receiver)
        self.seq.append(acq)
        witness = f"{self.path}:{line} ({self.qualname})"
        for held_class, _ in self.held:
            if held_class != lock_class:
                self.graph.add_edge(held_class, lock_class, witness)
        self.held.append((lock_class, receiver))

    def _release(self, receiver: str) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i][1] == receiver:
                del self.held[i]
                return
        # ``unlock()`` on a receiver we never saw acquire (release-only
        # helper, or the acquire is in a caller): drop the newest
        # non-section hold as the best guess, else ignore.
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i][0] != hooks.KERNEL_SECTION:
                del self.held[i]
                return

    # -- traversal -------------------------------------------------------

    def scan(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._node(stmt)

    def _node(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested defs are scanned as their own functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
            return
        if isinstance(node, ast.Call):
            self._call(node)
        for child in ast.iter_child_nodes(node):
            self._node(child)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        sections = 0
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "kernel_section"
            ):
                reason = "?"
                if expr.args and isinstance(expr.args[0], ast.Constant):
                    reason = str(expr.args[0].value)
                self._acquire(hooks.KERNEL_SECTION, reason, expr.lineno)
                sections += 1
                for arg in expr.args:
                    self._node(arg)
            else:
                self._node(expr)
        for stmt in node.body:
            self._node(stmt)
        for _ in range(sections):
            for i in range(len(self.held) - 1, -1, -1):
                if self.held[i][0] == hooks.KERNEL_SECTION:
                    del self.held[i]
                    break

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or node.args or node.keywords:
            return
        receiver = ast.unparse(func.value)
        if func.attr == "trylock":
            self._acquire(hooks.PAGE_LOCK, receiver, node.lineno)
        elif func.attr == "lock":
            self._acquire(hooks.TWO_WAY_POINTER, receiver, node.lineno)
        elif func.attr == "unlock":
            self._release(receiver)

    def finish(self) -> None:
        if self.seq:
            self.graph.acquisitions[self.qualname] = self.seq


def _iter_functions(
    tree: ast.Module, module: str
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function with its dotted qualname, in source order."""

    def walk(node: ast.AST, prefix: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                yield qual, child
                yield from walk(child, qual)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}.{child.name}")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, module)


def scan_source(
    source: str, path: str, graph: Optional[StaticLockGraph] = None
) -> StaticLockGraph:
    """Extract acquisitions from one module's source into ``graph``."""
    if graph is None:
        graph = StaticLockGraph()
    tree = ast.parse(source, filename=path)
    module = Path(path).stem
    for qualname, func in _iter_functions(tree, module):
        scanner = _FunctionScanner(graph, qualname, path)
        scanner.scan(func.body)
        scanner.finish()
    return graph


def build_graph(paths: Iterable[str | Path]) -> StaticLockGraph:
    """Scan files/directories (recursively) into one graph."""
    graph = StaticLockGraph()
    for raw in paths:
        p = Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for file in files:
            scan_source(file.read_text(encoding="utf-8"), str(file), graph)
    return graph


def cross_check(
    static: StaticLockGraph,
    runtime_edges: dict[tuple[str, str], str],
) -> list[dict]:
    """Compare the static graph against runtime lockdep edges.

    Returns finding dicts with ``kind`` in ``static-inversion``,
    ``canonical-violation``, ``dynamic-only-edge`` and
    ``static-only-edge`` — sorted, deterministic.
    """
    findings: list[dict] = []
    for a, b in static.inversions():
        findings.append({
            "kind": "static-inversion",
            "first": a,
            "second": b,
            "detail": (
                f"source acquires {a} and {b} in both orders: "
                f"{static.edges[(a, b)][0]} vs {static.edges[(b, a)][0]}"
            ),
        })
    for a, b in static.canonical_violations():
        findings.append({
            "kind": "canonical-violation",
            "first": a,
            "second": b,
            "detail": (
                f"{static.edges[(a, b)][0]} acquires {b} while holding "
                f"{a}, against the documented "
                f"{' -> '.join(CANONICAL_ORDER)} hierarchy"
            ),
        })
    for (a, b) in sorted(runtime_edges):
        if a == b:
            continue
        if (a, b) not in static.edges:
            findings.append({
                "kind": "dynamic-only-edge",
                "first": a,
                "second": b,
                "detail": (
                    f"runtime witnessed {runtime_edges[(a, b)]} but no "
                    f"single function statically acquires {b} under "
                    f"{a}: the order is composed across functions — "
                    "not checkable by per-function review"
                ),
            })
    for (a, b) in sorted(static.edges):
        if (a, b) not in runtime_edges:
            findings.append({
                "kind": "static-only-edge",
                "first": a,
                "second": b,
                "detail": (
                    f"{static.edges[(a, b)][0]} orders {a} -> {b} but "
                    "no runtime schedule has witnessed it (untested "
                    "lock path)"
                ),
            })
    return findings
