"""lockdep-lite: acquisition-order tracking for the simulated locks.

The simulator has three lock classes — the PTE-table page lock
(``trylock_page``), the kernel-section bracket on the clock, and the
async-fork two-way-pointer lock.  The fork paths take them in a fixed
hierarchy (pointer → kernel section → page lock); an inversion between
two classes, or acquiring the *same* lock twice without releasing it,
is how the real async-fork patch series deadlocked during development.

:class:`LockDep` subscribes to :data:`repro.analysis.hooks.LOCK_HOOKS`
and maintains a held-lock stack.  On every acquisition it records a
directed edge from each currently-held lock class to the new one; if
the reverse edge between two *different* classes was seen earlier, that
is an ``order-inversion``.  Acquiring a key already on the stack is a
``double-acquire``.  Same-class pairs (e.g. the migration loop holding
several page locks) establish no edges — ordering within a class is by
address in the kernel and out of scope here.

The tracker is a *witness*: with ``raise_on_violation=False`` (the
runtime default) it only records, because the held stack of a
single-threaded cooperative simulation can interleave logically
independent actors.  Dedicated tests drive one actor at a time and
assert ``violations == []``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import hooks
from repro.errors import LockOrderError


@dataclass(frozen=True)
class LockOrderViolation:
    """One suspicious acquisition."""

    kind: str
    first: str
    second: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} ({self.first} vs {self.second}): {self.detail}"


class LockDep:
    """Acquisition-order tracker over the simulated lock classes."""

    def __init__(self, raise_on_violation: bool = False) -> None:
        self.raise_on_violation = raise_on_violation
        #: Currently held ``(lock_class, key)`` pairs, oldest first.
        self.held: list[tuple[str, object]] = []
        #: First witnessed ordering per ``(earlier_class, later_class)``.
        self.edges: dict[tuple[str, str], str] = {}
        self.violations: list[LockOrderViolation] = []
        #: Occurrences per ``(kind, first, second)`` edge.  ``violations``
        #: keeps only the first witness of each edge (so long runs stay
        #: bounded); the count preserves how often it re-fired.
        self.violation_counts: dict[tuple[str, str, str], int] = {}
        self._reported: set[tuple[str, str, str]] = set()
        self._installed = False

    # -- lifecycle -------------------------------------------------------

    def install(self) -> None:
        """Start receiving lock events (re-arms after ``hooks.clear()``)."""
        if self._on_lock not in hooks.LOCK_HOOKS:
            hooks.LOCK_HOOKS.append(self._on_lock)
        self._installed = True

    def uninstall(self) -> None:
        """Stop receiving lock events."""
        if self._on_lock in hooks.LOCK_HOOKS:
            hooks.LOCK_HOOKS.remove(self._on_lock)
        self._installed = False

    def reset(self) -> None:
        """Forget held locks, edges and violations (test isolation)."""
        self.held.clear()
        self.edges.clear()
        self.violations.clear()
        self.violation_counts.clear()
        self._reported.clear()

    # -- event handling --------------------------------------------------

    def _on_lock(self, event: str, lock_class: str, key: object) -> None:
        if event == "acquire":
            self._on_acquire(lock_class, key)
        else:
            self._on_release(lock_class, key)

    def _on_acquire(self, lock_class: str, key: object) -> None:
        if (lock_class, key) in self.held:
            self._record(
                LockOrderViolation(
                    "double-acquire",
                    lock_class,
                    lock_class,
                    f"{lock_class}[{key!r}] acquired while already held",
                )
            )
        for held_class, held_key in self.held:
            if held_class == lock_class:
                continue
            edge = (held_class, lock_class)
            witness = f"{held_class}[{held_key!r}] -> {lock_class}[{key!r}]"
            self.edges.setdefault(edge, witness)
            reverse = self.edges.get((lock_class, held_class))
            if reverse is not None:
                self._record(
                    LockOrderViolation(
                        "order-inversion",
                        held_class,
                        lock_class,
                        f"now {witness}, previously {reverse}",
                    )
                )
        self.held.append((lock_class, key))

    def _on_release(self, lock_class: str, key: object) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i] == (lock_class, key):
                del self.held[i]
                return
        # Released a lock acquired before install(); nothing to do.

    def _record(self, violation: LockOrderViolation) -> None:
        dedup = (violation.kind, violation.first, violation.second)
        self.violation_counts[dedup] = (
            self.violation_counts.get(dedup, 0) + 1
        )
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise LockOrderError(str(violation), violation)

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderError` if anything was recorded."""
        if self.violations:
            raise LockOrderError(
                "; ".join(str(v) for v in self.violations),
                self.violations[0],
            )
