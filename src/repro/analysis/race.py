"""Vector-clock happens-before race detection over substrate events.

The paper's whole §4 design — the PTE-table page lock, the two-way
pointer, the proactive-synchronization checkpoints, the TLB shootdowns
— exists to order the async copy threads against the parent's
concurrent user activity.  MMSAN spot-checks known end-state
invariants; this module instead *proves synchronization sufficiency*:
every pair of conflicting memory-substrate accesses must be ordered by
the happens-before relation induced by the synchronization the
simulated kernel actually performed, or it is a race.

Model
-----
**Contexts.**  Logical actors (``main``, ``user:<mm>``,
``copy:<child>:<n>``) come from :mod:`repro.analysis.hooks`'s context
stack.  Each carries a vector clock.  Pushing/popping a context is not
an edge — the cooperative driver's interleaving is one schedule, and
only real synchronization may order accesses.

**Sync edges.**

* lock/kernel-section release → later acquire of the same
  ``(class, key)`` (page locks by frame, kernel sections by reason,
  two-way pointers by identity);
* a TLB shootdown is a synchronous rendezvous: the initiating context
  and the flushed process's user context join each other's clocks
  (IPI + wait-for-ack is a two-way barrier);
* explicit ``fork``/``publish``/``join`` edges emitted by the fork
  engines (fork-point ordering, table publication to the child's
  walker, copy-thread exit).

**Conflicts.**  Accesses carry a space (``pte`` — leaf-table words,
``frame`` — frame contents, ``mapcount``) and an op.  A *write/write*
or *read-after-write* pair on the same object, unordered by
happens-before, is a race.  A write after an earlier unordered read is
**not** flagged: PTE stores are atomic 8-byte words (no torn reads),
and "hardware walker reads a table the child is concurrently
write-protecting" is exactly the benign interleaving §4.2 argues safe
— the bug class is using the *stale* value afterwards, which the
read-after-write direction catches (a missing shootdown leaves the
later read unordered).  ``atomic`` ops (ACCESSED/DIRTY bit updates,
map-count inc/dec — atomic RMWs in the kernel) never conflict.

The detector is deterministic: contexts are interned in first-use
order, sites are repo-relative ``file:line`` stacks, and reports
serialize with sorted keys — same seed, byte-identical report.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis import hooks
from repro.errors import DataRaceError

#: Frames of call stack captured per access site.
STACK_DEPTH = 5

#: Files whose frames are elided from captured stacks (detector plumbing).
_ELIDED = ("race.py", "hooks.py")


class VectorClock:
    """A mapping ``context-id -> logical tick`` with join/increment.

    The algebra the detector relies on (and the property tests check):
    ``join`` is commutative, associative and idempotent with identity
    ``VectorClock()``; ``increment`` strictly grows exactly one
    component; ``a <= join(a, b)`` for all ``a, b``.
    """

    __slots__ = ("ticks",)

    def __init__(self, ticks: Optional[dict[int, int]] = None) -> None:
        self.ticks: dict[int, int] = dict(ticks) if ticks else {}

    def copy(self) -> "VectorClock":
        """An independent snapshot of this clock."""
        return VectorClock(self.ticks)

    def get(self, cid: int) -> int:
        """The tick recorded for context ``cid`` (0 if never seen)."""
        return self.ticks.get(cid, 0)

    def increment(self, cid: int) -> None:
        """Advance ``cid``'s own component by one."""
        self.ticks[cid] = self.ticks.get(cid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place component-wise maximum (receive other's knowledge)."""
        mine = self.ticks
        for cid, tick in other.ticks.items():
            if mine.get(cid, 0) < tick:
                mine[cid] = tick

    @staticmethod
    def joined(a: "VectorClock", b: "VectorClock") -> "VectorClock":
        """Functional join (for the algebra's property tests)."""
        out = a.copy()
        out.join(b)
        return out

    def __le__(self, other: "VectorClock") -> bool:
        return all(
            other.ticks.get(cid, 0) >= tick
            for cid, tick in self.ticks.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {c: t for c, t in self.ticks.items() if t} == {
            c: t for c, t in other.ticks.items() if t
        }

    def __hash__(self) -> int:  # pragma: no cover - not used as key
        return hash(frozenset(self.ticks.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{c}:{t}" for c, t in sorted(self.ticks.items())
        )
        return f"VectorClock({{{inner}}})"


@dataclass(frozen=True)
class AccessSite:
    """One side of a reported race."""

    context: str
    op: str
    #: Repo-relative ``file:line`` frames, innermost first.
    stack: tuple[str, ...]
    #: ``class[key]`` of every lock held at the access.
    locks: tuple[str, ...]

    def format(self) -> str:
        where = self.stack[0] if self.stack else "?"
        held = f" holding {{{', '.join(self.locks)}}}" if self.locks else ""
        return f"{self.op} by {self.context} at {where}{held}"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting accesses with no happens-before edge between them."""

    space: str
    key: object
    first: AccessSite
    second: AccessSite
    #: Human-readable description of the edge that would have ordered them.
    missing_edge: str

    def format(self) -> str:
        lines = [
            f"data race on {self.space}[{self.key}]:",
            f"  first:  {self.first.format()}",
        ]
        lines.extend(f"          {s}" for s in self.first.stack[1:])
        lines.append(f"  second: {self.second.format()}")
        lines.extend(f"          {s}" for s in self.second.stack[1:])
        lines.append(f"  missing edge: {self.missing_edge}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready representation (deterministic field order)."""
        return {
            "space": self.space,
            "key": str(self.key),
            "first": {
                "context": self.first.context,
                "op": self.first.op,
                "stack": list(self.first.stack),
                "locks": list(self.first.locks),
            },
            "second": {
                "context": self.second.context,
                "op": self.second.op,
                "stack": list(self.second.stack),
                "locks": list(self.second.locks),
            },
            "missing_edge": self.missing_edge,
        }


#: The last write to one object: ``(cid, tick, raw_stack, held_locks)``.
#: Reads are never recorded — a write after an unordered read is benign
#: here (atomic PTE stores), so only the last write can seed a race.
_WriteRecord = tuple[int, int, tuple, tuple]


class RaceDetector:
    """Happens-before race detector fed by the analysis hooks."""

    def __init__(self, stack_depth: int = STACK_DEPTH) -> None:
        self.stack_depth = stack_depth
        self.races: list[RaceReport] = []
        #: Events processed, per space (diagnostics for reports).
        self.event_counts: dict[str, int] = {}
        self._installed = False
        # Context interning: key -> id, plus per-id label and clock.
        self._ctx_ids: dict[object, int] = {}
        self._labels: list[str] = []
        self._clocks: list[VectorClock] = []
        # Release clocks per (lock_class, key) sync object.
        self._sync: dict[tuple[str, object], VectorClock] = {}
        # Locks currently held (cooperative model: one global stack).
        self._held: list[tuple[str, object]] = []
        # Stable display ids for identity-keyed locks (two-way pointers).
        self._interned_keys: dict[tuple[str, object], int] = {}
        self._reported: set[tuple] = set()
        # Per-object last-write records: (space, key) -> _WriteRecord.
        self._writes: dict[tuple[str, object], _WriteRecord] = {}

    # -- lifecycle -------------------------------------------------------

    def install(self) -> None:
        """Start receiving substrate events."""
        if self._installed:
            return
        hooks.ACCESS_HOOKS.append(self._on_access)
        hooks.LOCK_HOOKS.append(self._on_lock)
        hooks.EDGE_HOOKS.append(self._on_edge)
        self._installed = True

    def uninstall(self) -> None:
        """Stop receiving substrate events."""
        if not self._installed:
            return
        hooks.ACCESS_HOOKS.remove(self._on_access)
        hooks.LOCK_HOOKS.remove(self._on_lock)
        hooks.EDGE_HOOKS.remove(self._on_edge)
        self._installed = False

    def reset(self) -> None:
        """Forget all state (test isolation)."""
        self.races.clear()
        self.event_counts.clear()
        self._ctx_ids.clear()
        self._labels.clear()
        self._clocks.clear()
        self._sync.clear()
        self._held.clear()
        self._interned_keys.clear()
        self._reported.clear()
        self._writes.clear()

    def assert_clean(self) -> None:
        """Raise :class:`DataRaceError` if any race was recorded."""
        if self.races:
            raise DataRaceError(
                "\n".join(r.format() for r in self.races), self.races
            )

    # -- context plumbing ------------------------------------------------

    def _ctx(self, key: object) -> int:
        cid = self._ctx_ids.get(key)
        if cid is None:
            cid = len(self._clocks)
            self._ctx_ids[key] = cid
            self._labels.append(self._label(key))
            clock = VectorClock()
            clock.increment(cid)
            self._clocks.append(clock)
        return cid

    @staticmethod
    def _label(key: object) -> str:
        if isinstance(key, tuple):
            return ":".join(str(part) for part in key)
        return str(key)

    def _current(self) -> int:
        return self._ctx(hooks.current_context())

    def _lock_label(self, lock_class: str, key: object) -> str:
        if lock_class == hooks.TWO_WAY_POINTER:
            # Identity keys (id(pointer)) are not stable across runs;
            # intern them in first-use order for deterministic reports.
            stable = self._interned_keys.setdefault(
                (lock_class, key), len(self._interned_keys)
            )
            return f"{lock_class}#{stable}"
        return f"{lock_class}[{key}]"

    # -- stacks ----------------------------------------------------------

    @staticmethod
    def _relpath(filename: str) -> str:
        posix = filename.replace("\\", "/")
        for marker in ("/src/", "/tests/", "/scripts/"):
            cut = posix.rfind(marker)
            if cut >= 0:
                return posix[cut + 1 :]
        return posix.rsplit("/", 1)[-1]

    def _raw_stack(self) -> tuple:
        """Capture ``(filename, lineno)`` frames; format lazily at report."""
        out: list[tuple[str, int]] = []
        frame = sys._getframe(2)
        while frame is not None and len(out) < self.stack_depth:
            filename = frame.f_code.co_filename
            if not filename.endswith(_ELIDED):
                out.append((filename, frame.f_lineno))
            frame = frame.f_back
        return tuple(out)

    def _site(self, op: str, cid: int, raw_stack: tuple, held: tuple) -> AccessSite:
        return AccessSite(
            context=self._labels[cid],
            op=op,
            stack=tuple(
                f"{self._relpath(filename)}:{lineno}"
                for filename, lineno in raw_stack
            ),
            locks=tuple(
                self._lock_label(cls, key) for cls, key in held
            ),
        )

    # -- event handlers --------------------------------------------------

    def _on_lock(self, event: str, lock_class: str, key: object) -> None:
        cid = self._current()
        clock = self._clocks[cid]
        sync_key = (lock_class, key)
        if event == "acquire":
            released = self._sync.get(sync_key)
            if released is not None:
                clock.join(released)
            clock.increment(cid)
            self._held.append(sync_key)
        else:
            self._sync[sync_key] = clock.copy()
            clock.increment(cid)
            for i in range(len(self._held) - 1, -1, -1):
                if self._held[i] == sync_key:
                    del self._held[i]
                    break

    def _on_edge(self, kind: str, src: object, dst: object) -> None:
        if kind == "tlb-flush":
            # Synchronous shootdown: IPI + wait-for-ack is a rendezvous,
            # so initiator and target exchange clocks both ways.
            initiator = self._current()
            target = self._ctx(("user", dst))
            if initiator == target:
                return
            self._clocks[target].join(self._clocks[initiator])
            self._clocks[initiator].join(self._clocks[target])
            self._clocks[initiator].increment(initiator)
            self._clocks[target].increment(target)
            return
        src_cid = self._current() if src is None else self._ctx(src)
        dst_cid = self._ctx(dst)
        if src_cid == dst_cid:
            return
        self._clocks[dst_cid].join(self._clocks[src_cid])
        self._clocks[src_cid].increment(src_cid)

    def _on_access(self, op: str, space: str, key: object) -> None:
        self.event_counts[space] = self.event_counts.get(space, 0) + 1
        if op == "atomic":
            # Atomic RMWs (A/D bit updates, map-count inc/dec) never
            # race: the hardware/kernel performs them atomically.
            return
        cid = self._current()
        clock = self._clocks[cid]
        write = self._writes.get((space, key))
        conflict = (
            write is not None
            and write[0] != cid
            and clock.get(write[0]) < write[1]
        )
        if conflict:
            self._report(space, key, write, op, cid)
        if op == "write":
            self._writes[(space, key)] = (
                cid,
                clock.get(cid),
                self._raw_stack(),
                tuple(self._held),
            )

    # -- reporting -------------------------------------------------------

    def _report(
        self,
        space: str,
        key: object,
        write: _WriteRecord,
        op: str,
        cid: int,
    ) -> None:
        first = self._site("write", write[0], write[2], write[3])
        second = self._site(op, cid, self._raw_stack(), tuple(self._held))
        dedup = (
            space,
            first.context,
            first.stack[:1],
            second.context,
            second.stack[:1],
        )
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.races.append(
            RaceReport(
                space=space,
                key=key,
                first=first,
                second=second,
                missing_edge=self._missing_edge(first, second),
            )
        )

    @staticmethod
    def _missing_edge(first: AccessSite, second: AccessSite) -> str:
        common = sorted(set(first.locks) & set(second.locks))
        if common:
            hint = (
                f"both sides hold {{{', '.join(common)}}} but no "
                "release→acquire of it separates the accesses"
            )
        else:
            hint = "no release→acquire on any common lock connects them"
        target = second.context
        if target.startswith("user:"):
            hint += (
                f"; a TLB shootdown of '{target[len('user:'):]}' between "
                "the accesses would establish the edge"
            )
        return hint


@contextmanager
def detecting(stack_depth: int = STACK_DEPTH) -> Iterator[RaceDetector]:
    """Scope a freshly installed detector over a block."""
    detector = RaceDetector(stack_depth=stack_depth)
    detector.install()
    try:
        yield detector
    finally:
        detector.uninstall()
