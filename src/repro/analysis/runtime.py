"""Opt-in wiring of the checkers into the fork engines.

Enable with ``REPRO_MMSAN=1`` in the environment (or the pytest
``--mmsan`` flag, which sets it).  When enabled:

* every :class:`~repro.mem.address_space.AddressSpace` is tracked by a
  per-allocator :class:`~repro.analysis.mmsan.Mmsan`;
* every fork (default, ODF, async) gets a :class:`ForkProbe` that
  captures a :class:`~repro.analysis.oracle.SnapshotOracle` fingerprint
  at fork-call time and audits MMSAN + oracle at the natural barriers —
  fork return, async-session completion, and the §4.4 failure paths
  after rollback;
* a non-raising :class:`~repro.analysis.lockdep.LockDep` witnesses all
  lock traffic (``supervisor.lockdep``), reset between tests.

When disabled, :func:`fork_probe` returns a shared no-op probe and the
engines pay one environment lookup per fork.
"""

from __future__ import annotations

import os
import weakref
from typing import Optional

from repro.analysis import hooks
from repro.analysis.lockdep import LockDep
from repro.analysis.mmsan import Mmsan
from repro.analysis.oracle import SnapshotOracle

ENV_FLAG = "REPRO_MMSAN"

_supervisor: Optional["Supervisor"] = None


def enabled() -> bool:
    """Whether the runtime checkers are requested via the environment."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class Supervisor:
    """Process-wide checker state: one MMSAN per allocator + lockdep."""

    def __init__(self) -> None:
        self.lockdep = LockDep(raise_on_violation=False)
        self._mmsans: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._started = False

    def start(self) -> None:
        # Membership-based so a test-scoped ``hooks.clear()`` (the
        # analysis suites wipe the registries for isolation) can be
        # undone by calling start() again.
        self.lockdep.install()
        if self._on_mm_created not in hooks.MM_HOOKS:
            hooks.MM_HOOKS.append(self._on_mm_created)
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        self.lockdep.uninstall()
        if self._on_mm_created in hooks.MM_HOOKS:
            hooks.MM_HOOKS.remove(self._on_mm_created)
        self._started = False

    def _on_mm_created(self, mm) -> None:
        self.mmsan_for(mm.frames).track(mm)

    def mmsan_for(self, frames) -> Mmsan:
        """The MMSAN instance auditing one frame allocator's mms."""
        mmsan = self._mmsans.get(frames)
        if mmsan is None:
            mmsan = Mmsan(frames)
            self._mmsans[frames] = mmsan
        return mmsan

    def reset_transient(self) -> None:
        """Drop cross-test state (lockdep stacks/edges)."""
        self.lockdep.reset()


def activate() -> Supervisor:
    """Install the supervisor (idempotent); returns it."""
    global _supervisor
    if _supervisor is None:
        _supervisor = Supervisor()
    _supervisor.start()
    return _supervisor


def deactivate() -> None:
    """Remove the supervisor and all its hooks."""
    global _supervisor
    if _supervisor is not None:
        _supervisor.stop()
        _supervisor = None


def current() -> Optional[Supervisor]:
    """The active supervisor, if any."""
    return _supervisor


class _NullProbe:
    """No-op probe handed out while the checkers are disabled."""

    def completed(self, result) -> None:
        pass

    def async_started(self, session) -> None:
        pass

    def session_completed(self, session) -> None:
        pass

    def session_failed(self, session) -> None:
        pass

    def failed(self) -> None:
        pass


NULL_PROBE = _NullProbe()


class ForkProbe:
    """Checker attachment for one fork operation."""

    def __init__(self, supervisor: Supervisor, engine, parent) -> None:
        self.engine = engine
        self.parent = parent
        self.mmsan = supervisor.mmsan_for(parent.mm.frames)
        self.mmsan.track(parent.mm)
        self.oracle = SnapshotOracle.capture(parent.mm)

    def _markers(self) -> bool:
        # The copied-marker state machine only governs async-fork; a
        # finished ODF session legitimately leaves markers for the
        # fault handler to clear lazily.
        return getattr(self.engine, "name", "") == "async"

    # -- synchronous engines (default, ODF) ------------------------------

    def completed(self, result) -> None:
        """Fork returned: the child's snapshot must already be complete."""
        self.mmsan.track(result.child.mm)
        self.oracle.assert_consistent(result.child.mm)
        self.mmsan.assert_clean(pmd_markers=self._markers())

    # -- async-fork ------------------------------------------------------

    def async_started(self, session) -> None:
        """The parent's (fast) fork call returned; copying continues."""
        self.mmsan.track(session.child.mm)
        session._analysis_probe = self
        self.oracle.assert_consistent(
            session.child.mm, pending_parent=self.parent.mm
        )
        self.mmsan.assert_clean(pmd_markers=True)

    def session_completed(self, session) -> None:
        """The child finished copying: full consistency is due now."""
        child_mm = session.child.mm
        alive = child_mm.frames.is_allocated(
            child_mm.page_table.pgd.page.frame
        )
        if alive:
            self.oracle.assert_consistent(child_mm)
        self.mmsan.assert_clean(pmd_markers=True)

    def session_failed(self, session) -> None:
        """§4.4 child-copy/proactive-sync failure: audit the rollback."""
        self.mmsan.assert_clean(pmd_markers=True)

    def failed(self) -> None:
        """§4.4 parent-copy failure: parent must be fully restored."""
        self.mmsan.assert_clean(pmd_markers=self._markers())


def fork_probe(engine, parent):
    """Probe for one fork call; a no-op unless the checkers are enabled."""
    if not enabled():
        return NULL_PROBE
    supervisor = activate()
    return ForkProbe(supervisor, engine, parent)
