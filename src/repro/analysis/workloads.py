"""Seeded workloads shared by the race-detector tests and checkers.

The race detector is only as good as the schedules it observes, so the
workloads that drive it live in one place: the clean per-engine
workload, the async-fork chaos storm, the page-migration scenario, and
the three *mutations* that re-introduce bugs PR 1 fixed (the two
dropped TLB shootdowns) plus a dropped page lock.  Both the test suite
(``tests/analysis/test_race.py``) and the ``races`` checker in
:mod:`repro.analysis.framework` replay exactly these, which is what
makes ``repro-analyze`` reports reproducible claims about the engines
rather than artifacts of an ad-hoc driver.

Everything here is seeded — same seed, same schedule, same report.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.analysis import hooks
from repro.determinism import seeded_random
from repro.errors import ForkError
from repro.kernel.task import Process
from repro.mem.flags import PteFlags, make_pte, pte_frame
from repro.mem.frames import FrameAllocator
from repro.units import MIB, PAGE_SIZE

#: Engine names accepted by :func:`run_engine`.
ENGINES = ("default", "odf", "async")


def _make_engine(name: str):
    # Local imports: this module is imported by the CLI before any
    # engine is needed, and the engines import the analysis package.
    from repro.core.async_fork import AsyncFork
    from repro.kernel.forks.default import DefaultFork
    from repro.kernel.forks.odf import OnDemandFork

    try:
        cls = {"default": DefaultFork, "odf": OnDemandFork, "async": AsyncFork}[name]
    except KeyError:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    return cls()


def _seeded_parent(frames: FrameAllocator, size: int):
    """A parent with ``size`` bytes mapped and every 64th page written."""
    parent = Process(frames, name="parent")
    vma = parent.mm.mmap(size)
    for i in range(0, size, 64 * PAGE_SIZE):
        parent.mm.write_memory(vma.start + i, b"seed%d" % i)
    return parent, vma


def run_engine(engine: str, steps: int = 200, seed: int = 7,
               size: int = 8 * MIB):
    """Fork under ``engine`` with seeded parent activity interleaved.

    The parent keeps writing and reading random pages while the child's
    copy (async) or unshares (ODF) proceed; afterwards the child reads
    a sample of its snapshot.  Returns the engine's fork result.
    """
    rng = seeded_random(seed)
    frames = FrameAllocator()
    parent, vma = _seeded_parent(frames, size)
    res = _make_engine(engine).fork(parent)
    for step in range(steps):
        addr = vma.start + rng.randrange(0, size, PAGE_SIZE)
        if rng.random() < 0.5:
            parent.mm.write_memory(addr, b"x%d" % step)
        else:
            parent.mm.read_memory(addr, 16)
        if res.session is not None and hasattr(res.session, "child_step"):
            res.session.child_step()
    if res.session is not None and hasattr(res.session, "run_to_completion"):
        res.session.run_to_completion()
    for i in range(0, size, 256 * PAGE_SIZE):
        res.child.mm.read_memory(vma.start + i, 16)
    return res


def run_chaos(seed: int = 0, forks: int = 6, steps: int = 40,
              size: int = 4 * MIB):
    """A seeded storm of async forks under injected faults.

    Each round forks with a fault plan drawn from ``seed`` (table-alloc
    OOMs, SIGKILLed and hung children), interleaves parent writes with
    child steps, and survives whatever §4.4 failure path fires.  The
    clean engines must stay race-free even on the rollback paths.
    """
    from repro.core.async_fork import AsyncFork
    from repro.faults import (
        SITE_CHILD_COPY,
        SITE_FRAME_ALLOC,
        FaultPlan,
        FaultSpec,
    )

    rng = seeded_random(seed)
    frames = FrameAllocator()
    parent, vma = _seeded_parent(frames, size)
    outcomes = []
    kinds = ("none", "oom", "sigkill", "hang", "oom", "sigkill")
    for round_no in range(forks):
        plan = FaultPlan(seed=seed + round_no)
        kind = kinds[round_no % len(kinds)]
        # The copy finishes within a handful of steps (one PMD table per
        # worker per step), so the windows must be tight to hit it.
        if kind == "oom":
            plan.add(FaultSpec(
                site=SITE_FRAME_ALLOC, kind="oom",
                after=rng.randrange(0, 4), count=1,
                match=lambda d: d["purpose"].endswith("-table"),
            ))
        elif kind in ("sigkill", "hang"):
            plan.add(FaultSpec(
                site=SITE_CHILD_COPY, kind=kind,
                after=rng.randrange(0, 2), count=1, magnitude=3,
            ))
        engine = AsyncFork()
        engine.attach_fault_plan(plan)
        frames.attach_fault_plan(plan)  # oom fires at the allocator
        child = None
        try:
            res = engine.fork(parent)
            child = res.child
            for step in range(steps):
                addr = vma.start + rng.randrange(0, size, PAGE_SIZE)
                parent.mm.write_memory(addr, b"c%d" % step)
                res.session.child_step()
            res.session.run_to_completion()
            outcomes.append("failed" if res.session.failed else "completed")
        except ForkError as exc:
            outcomes.append(type(exc).__name__)
        finally:
            engine.attach_fault_plan(None)
            frames.attach_fault_plan(None)
            if child is not None and child.alive:
                child.exit()
    return outcomes


def run_migration(size: int = 4 * MIB):
    """Async fork racing a page migration in the parent's context.

    Models the NUMA-balancing path: in the faulting process's context,
    take the covering PTE-table page lock, remap one page to a fresh
    frame, shoot the parent's TLB down, drop the old frame, unlock.
    The page lock plus the shootdown order the remap against the copy
    workers — remove either (see :func:`dropped_page_lock`) and the
    detector must flag the remap racing the child's clone of the table.
    """
    frames = FrameAllocator()
    parent = Process(frames, name="parent")
    vma = parent.mm.mmap(size)
    for i in range(0, size, 16 * PAGE_SIZE):
        parent.mm.write_memory(vma.start + i, b"s")

    from repro.core.async_fork import AsyncFork

    res = AsyncFork().fork(parent)
    with hooks.context(("user", parent.mm.name)):
        leaf = parent.mm.page_table.walk_pte_table(vma.start)
        old = leaf.get(0)
        locked = leaf.page.trylock()
        assert locked, "migration needs the PTE-table page lock"
        new_page = frames.alloc("data")
        new_page.get()
        frames.copy_contents(pte_frame(old), new_page.frame)
        leaf.set(0, make_pte(new_page.frame,
                             PteFlags.PRESENT | PteFlags.ACCESSED))
        parent.mm.tlb.flush_page(vma.start)
        frames.page(pte_frame(old)).put()
        leaf.page.unlock()
    res.session.run_to_completion()
    res.child.mm.read_memory(vma.start, 16)
    return res


# ---------------------------------------------------------------------------
# mutations: the bugs PR 1 fixed, re-introduced on purpose
# ---------------------------------------------------------------------------


@contextmanager
def dropped_async_shootdown():
    """M1: async-fork stops flushing the parent span after a table copy."""
    from repro.core.async_fork import AsyncForkSession

    original = AsyncForkSession._shootdown_parent_span
    AsyncForkSession._shootdown_parent_span = lambda self, span: None
    try:
        yield
    finally:
        AsyncForkSession._shootdown_parent_span = original


@contextmanager
def dropped_odf_shootdown():
    """M2: ODF stops shooting down the *other* sharer after an unshare."""
    from repro.kernel.forks.odf import OdfSession

    original = OdfSession._shootdown_other
    OdfSession._shootdown_other = lambda self, mm: None
    try:
        yield
    finally:
        OdfSession._shootdown_other = original


@contextmanager
def dropped_page_lock():
    """M3: the PTE-table page lock silently stops excluding anyone."""
    from repro.mem.page_struct import PageStruct

    original = (PageStruct.trylock, PageStruct.unlock)
    PageStruct.trylock = lambda self: True
    PageStruct.unlock = lambda self: None
    try:
        yield
    finally:
        PageStruct.trylock, PageStruct.unlock = original


#: The three seeded mutations as ``name -> (patch, workload)``; the
#: workload must race under the patch and stay clean without it.
MUTATIONS = {
    "async-shootdown": (dropped_async_shootdown,
                        lambda: run_engine("async")),
    "odf-shootdown": (dropped_odf_shootdown,
                      lambda: run_engine("odf")),
    "page-lock": (dropped_page_lock, run_migration),
}
