"""``repro-analyze``: one CLI over every registered checker.

Usage::

    repro-analyze --all                      # every checker, text output
    repro-analyze --check races --check lint # a subset
    repro-analyze --all --format json        # deterministic JSON
    repro-analyze --all --format sarif -o report.sarif
    repro-analyze --list                     # what is available

Exit status: 1 when any ``error``-severity finding was produced, 2 on
usage errors, 0 otherwise.  Reports are a pure function of the tree and
``--seed`` — run it twice, diff the bytes, get nothing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import framework


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="run the repro static/dynamic analysis checkers",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered checker"
    )
    parser.add_argument(
        "--check", action="append", default=[], metavar="NAME",
        help="run one checker by name (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list checkers and exit"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="seed for the dynamic workloads (default: 7)",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, cls in framework.REGISTRY.items():
            print(f"{name:10s} {cls.description}")
        return 0

    names = list(framework.REGISTRY) if args.all else args.check
    if not names:
        parser.print_usage(sys.stderr)
        print(
            "repro-analyze: pick --all or at least one --check NAME",
            file=sys.stderr,
        )
        return 2

    root = Path(args.root).resolve()
    try:
        results = framework.run_checks(names, root, seed=args.seed)
    except KeyError as exc:
        print(f"repro-analyze: {exc.args[0]}", file=sys.stderr)
        return 2

    renderer = {
        "text": framework.render_text,
        "json": framework.render_json,
        "sarif": framework.render_sarif,
    }[args.format]
    report = renderer(results, args.seed)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)
    return 1 if any(r.errors for r in results) else 0


if __name__ == "__main__":
    raise SystemExit(main())
