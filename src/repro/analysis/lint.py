"""AST lint enforcing determinism and error hygiene in ``src/repro``.

Rules
-----
``wall-clock``
    Calls that read the host clock (``time.time``, ``perf_counter``,
    ``monotonic`` and friends, ``datetime.now`` …).  Simulated time must
    come from :class:`repro.kernel.clock.Clock`.
``global-random``
    Calls into the process-global RNGs (``random.random()``,
    ``np.random.rand()`` …).  Their hidden state makes runs depend on
    import order and earlier tests.
``rng-construction``
    Direct generator construction (``np.random.default_rng``,
    ``random.Random``) anywhere outside :mod:`repro.determinism`, which
    is the blessed construction site and requires an explicit seed.
``generic-raise``
    ``raise Exception(...)`` / ``raise BaseException(...)`` — library
    errors must be :class:`repro.errors.ReproError` subclasses (or the
    specific stdlib types tests already rely on).
``builtin-shadow``
    A class or function whose name collides with a Python builtin
    exception once trailing underscores are stripped (e.g. the old
    ``MemoryError_``), which invites confusing ``except`` clauses.
``pte-loop``
    A ``for`` loop (or comprehension) iterating a PTE table entry by
    entry — ``present_indices()``, ``referencing_indices()``,
    ``referencing_frames()``, ``entries()`` or
    ``range(ENTRIES_PER_TABLE)`` — inside one of the *hot modules* of
    the memory substrate (:data:`_PTE_HOT_MODULES`).  Those paths must
    run as whole-table numpy operations (DESIGN.md §10); a per-element
    Python loop there silently reverts the vectorization.  Deliberate
    scalar fallbacks (e.g. the tracing arms, cold NUMA paths) carry the
    allow pragma.
``hook-leak``
    Non-test code appending a callback to one of the
    :mod:`repro.analysis.hooks` collector lists (``LOCK_HOOKS``,
    ``MM_HOOKS``, ``ACCESS_HOOKS``, ``EDGE_HOOKS``) in a module with no
    paired ``.remove`` on the same collector.  A hook with no teardown
    path survives into every later run and skews both perf numbers and
    checker state.

Alias resolution
----------------
Call targets are resolved through the import table *before* matching,
and the table is built in a pre-pass over the whole module so calls
that lexically precede their import still resolve.  ``from X import *``
of the clock/RNG modules pre-populates the names those modules are
known to export, and simple rebinds (``t = time`` / ``now = t.time``)
propagate the alias to the new name.

A finding on a line containing ``# lint: allow(<rule>)`` is suppressed.
"""

from __future__ import annotations

import ast
import builtins
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Functions in the ``time`` module that read the host clock.
_WALL_CLOCK_TIME_FUNCS = frozenset(
    name + suffix
    for name in ("time", "perf_counter", "monotonic", "process_time", "thread_time")
    for suffix in ("", "_ns")
)

#: ``datetime`` attributes that read the host clock.
_WALL_CLOCK_DATETIME = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``np.random`` attributes that are fine to *call* anywhere: seeding
#: machinery rather than draws from the global generator.  The
#: generator constructors themselves fall under ``rng-construction``.
_NP_RANDOM_OK = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)

#: Draws from the process-global RNG exported by ``random`` — the names
#: a ``from random import *`` pulls into a module's namespace.
_RANDOM_GLOBAL_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate",
        "normalvariate", "paretovariate", "randbytes", "randint", "random",
        "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
        "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: What a star-import of each watched module binds, as ``name -> dotted``.
_STAR_NAMESPACES: dict[str, dict[str, str]] = {
    "time": {name: f"time.{name}" for name in _WALL_CLOCK_TIME_FUNCS},
    "datetime": {
        "datetime": "datetime.datetime",
        "date": "datetime.date",
    },
    "random": {
        **{name: f"random.{name}" for name in _RANDOM_GLOBAL_FUNCS},
        "Random": "random.Random",
        "SystemRandom": "random.SystemRandom",
    },
}

#: The collector lists in :mod:`repro.analysis.hooks` (rule ``hook-leak``).
_HOOK_COLLECTORS = frozenset(
    {"LOCK_HOOKS", "MM_HOOKS", "ACCESS_HOOKS", "EDGE_HOOKS"}
)

#: Builtin exception names for the shadow rule.
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

#: Modules whose sources may construct RNGs (with an allow pragma too,
#: but listing them here keeps the lint's self-test honest).
_RNG_BLESSED_MODULES = frozenset({"determinism"})

#: Path suffixes of the vectorized hot modules: per-PTE Python loops in
#: these files are findings (rule ``pte-loop``).
_PTE_HOT_MODULES = (
    "mem/pte_table.py",
    "mem/page_table.py",
    "mem/cow.py",
    "mem/address_space.py",
    "mem/reclaim.py",
    "mem/tlb.py",
    "kernel/forks/default.py",
    "kernel/forks/odf.py",
    "core/async_fork.py",
    "kvs/rdb.py",
)

#: PteTable accessors whose per-element iteration marks a PTE loop.
_PTE_ITER_METHODS = frozenset(
    {
        "present_indices",
        "referencing_indices",
        "referencing_frames",
        "entries",
    }
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready mapping (stable key set, machine consumers)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class _ImportTracker:
    """Map local names to the dotted module paths they alias."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never reach stdlib/numpy
        for alias in node.names:
            if alias.name == "*":
                # ``from time import *`` binds the module's exports as
                # bare names; pre-populate the ones we know about.
                self.aliases.update(_STAR_NAMESPACES.get(node.module, {}))
                continue
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def visit_assign(self, node: ast.Assign) -> None:
        """Propagate aliases through simple rebinds (``t = time``)."""
        targets = [t for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            return
        dotted = None
        if isinstance(node.value, (ast.Name, ast.Attribute)):
            dotted = self.resolve_call(node.value)
        for target in targets:
            if dotted is not None and dotted != target.id:
                self.aliases[target.id] = dotted
            else:
                # Rebound to something we can't follow — drop any stale
                # alias rather than report on the wrong target.
                self.aliases.pop(target.id, None)

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted path of a call target, alias-resolved, else ``None``."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str], module_name: str) -> None:
        self.path = path
        self.lines = source_lines
        self.module_name = module_name
        self.imports = _ImportTracker()
        self.findings: list[LintFinding] = []
        posix_path = path.replace("\\", "/")
        self.pte_hot = any(
            posix_path.endswith(suffix) for suffix in _PTE_HOT_MODULES
        )
        self.is_test = (
            "/tests/" in posix_path
            or module_name.startswith("test_")
            or module_name == "conftest"
        )
        #: ``hook-leak`` bookkeeping: append sites and removed collectors.
        self._hook_appends: list[tuple[ast.Call, str]] = []
        self._hook_removes: set[str] = set()

    # -- helpers ---------------------------------------------------------

    def _allowed(self, line: int, rule: str) -> bool:
        if 1 <= line <= len(self.lines):
            return f"# lint: allow({rule})" in self.lines[line - 1]
        return False

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._allowed(line, rule):
            return
        self.findings.append(
            LintFinding(self.path, line, getattr(node, "col_offset", 0), rule, message)
        )

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.imports.visit_assign(node)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = self.imports.resolve_call(node.func)
        if target is not None:
            self._check_call_target(node, target)
            self._track_hook_call(node, target)
        self.generic_visit(node)

    def _track_hook_call(self, node: ast.Call, target: str) -> None:
        parts = target.split(".")
        if len(parts) < 2 or parts[-2] not in _HOOK_COLLECTORS:
            return
        if parts[-1] == "append":
            self._hook_appends.append((node, parts[-2]))
        elif parts[-1] in ("remove", "clear"):
            self._hook_removes.add(parts[-2])

    def finalize(self) -> None:
        """Emit the module-scoped findings (``hook-leak``)."""
        if self.is_test:
            return
        for node, collector in self._hook_appends:
            if collector in self._hook_removes:
                continue
            self._report(
                node,
                "hook-leak",
                f"{collector}.append without a paired {collector}.remove "
                "in this module; the hook outlives its checker — pair "
                "install/uninstall",
            )

    def _check_call_target(self, node: ast.Call, target: str) -> None:
        parts = target.split(".")
        # wall-clock -----------------------------------------------------
        if len(parts) == 2 and parts[0] == "time" and parts[1] in _WALL_CLOCK_TIME_FUNCS:
            self._report(
                node,
                "wall-clock",
                f"{target}() reads the host clock; use repro.kernel.clock.Clock",
            )
            return
        if len(parts) == 1 and parts[0] in _WALL_CLOCK_TIME_FUNCS:
            # ``from time import perf_counter`` resolves to
            # ``time.perf_counter`` via the alias table; a bare name only
            # matches when it was imported from ``time``.
            return
        if target in _WALL_CLOCK_DATETIME or (
            len(parts) >= 2 and ".".join(parts[-3:]) in _WALL_CLOCK_DATETIME
        ):
            self._report(
                node,
                "wall-clock",
                f"{target}() reads the host clock; use repro.kernel.clock.Clock",
            )
            return
        # rng-construction ----------------------------------------------
        if target in ("numpy.random.default_rng", "random.Random"):
            if self.module_name not in _RNG_BLESSED_MODULES:
                self._report(
                    node,
                    "rng-construction",
                    f"{target}() outside repro.determinism; use "
                    "repro.determinism.seeded_rng/seeded_random",
                )
            return
        # global-random ---------------------------------------------------
        if len(parts) == 2 and parts[0] == "random" and parts[1] != "SystemRandom":
            self._report(
                node,
                "global-random",
                f"{target}() draws from the process-global RNG; "
                "use repro.determinism.seeded_random",
            )
            return
        if (
            len(parts) >= 3
            and parts[-3] == "numpy"
            and parts[-2] == "random"
            and parts[-1] not in _NP_RANDOM_OK
        ):
            self._report(
                node,
                "global-random",
                f"{target}() draws from numpy's legacy global RNG; "
                "use repro.determinism.seeded_rng",
            )

    # -- per-PTE loops -----------------------------------------------------

    def _is_pte_iterable(self, expr: ast.expr) -> str | None:
        """Describe ``expr`` if iterating it walks a table per element."""
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id == "enumerate" and expr.args:
                return self._is_pte_iterable(expr.args[0])
            if func.id == "range" and any(
                isinstance(arg, ast.Name) and arg.id == "ENTRIES_PER_TABLE"
                for arg in expr.args
            ):
                return "range(ENTRIES_PER_TABLE)"
            return None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _PTE_ITER_METHODS
        ):
            return f".{func.attr}()"
        return None

    def _check_pte_loop(self, node: ast.AST, iterable: ast.expr) -> None:
        if not self.pte_hot:
            return
        what = self._is_pte_iterable(iterable)
        if what is not None:
            self._report(
                node,
                "pte-loop",
                f"per-PTE loop over {what} in a vectorized hot module; "
                "use whole-table numpy ops (DESIGN.md §10)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_pte_loop(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        for gen in node.generators:
            self._check_pte_loop(gen.iter, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- raises ----------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        call_func = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(call_func, ast.Name) and call_func.id in ("Exception", "BaseException"):
            self._report(
                node,
                "generic-raise",
                f"raise {call_func.id} is unclassifiable; raise a "
                "repro.errors.ReproError subclass",
            )
        self.generic_visit(node)

    # -- definitions ------------------------------------------------------

    def _check_shadow(self, node: ast.AST, name: str) -> None:
        stripped = name.rstrip("_")
        if stripped != name and stripped in _BUILTIN_EXCEPTIONS:
            self._report(
                node,
                "builtin-shadow",
                f"{name!r} shadows builtin exception {stripped!r}; "
                f"pick a distinct name (e.g. Sim{stripped})",
            )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_shadow(node, node.name)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_shadow(node, node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_shadow(node, node.name)
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint Python source text; returns findings sorted by location."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path, exc.lineno or 0, exc.offset or 0, "syntax-error", str(exc.msg)
            )
        ]
    module_name = Path(path).stem
    linter = _Linter(path, source.splitlines(), module_name)
    # Import pre-pass: a call that lexically precedes its import (late
    # imports at function scope, bodies defined above the import block)
    # must still resolve through the alias table.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            linter.imports.visit_import(node)
        elif isinstance(node, ast.ImportFrom):
            linter.imports.visit_import_from(node)
    linter.visit(tree)
    linter.finalize()
    return sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str | Path) -> list[LintFinding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def _iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    """Lint files and directories (recursively); returns all findings."""
    findings: list[LintFinding] = []
    for file in _iter_py_files(paths):
        findings.extend(lint_file(file))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: exit 1 when any finding is reported."""
    args = list(sys.argv[1:] if argv is None else argv)
    fmt = "text"
    if "--format" in args:
        i = args.index("--format")
        try:
            fmt = args[i + 1]
        except IndexError:
            print("lint_repro: --format needs an argument", file=sys.stderr)
            return 2
        del args[i : i + 2]
        if fmt not in ("text", "json"):
            print(f"lint_repro: unknown format {fmt!r}", file=sys.stderr)
            return 2
    if not args:
        print(
            "usage: lint_repro.py [--format text|json] PATH [PATH ...]",
            file=sys.stderr,
        )
        return 2
    try:
        findings = lint_paths(args)
    except OSError as exc:
        print(f"lint_repro: cannot read {exc.filename}: {exc.strerror}",
              file=sys.stderr)
        return 2
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if fmt == "json":
        print(
            json.dumps(
                {
                    "count": len(findings),
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
