"""The snapshot-consistency oracle.

Fork-based snapshotting promises the child an immutable copy of the
parent's memory *as of the fork call* — that is the whole point of
BGSAVE.  The oracle makes the promise checkable: :meth:`capture`
fingerprints the parent's logical memory (page digests keyed by virtual
address, including swapped-out and huge-page contents) at fork-call
time, and :meth:`verify` diffs a child address space against the
fingerprint after the snapshot materializes.

Two verification modes:

* :meth:`verify` walks the child's page table directly — the snapshot
  the child's *page tables* describe.  Used by the runtime probes after
  every fork in the test matrix.
* :meth:`verify_observed` reads through ``read_memory`` and therefore
  honours the child's TLB, which is exactly how the Table 1 stale-TLB
  leakage corrupts a snapshot while the page tables look consistent.
  ``examples/data_leakage_demo.py`` becomes the automated regression
  ``tests/analysis/test_oracle.py::test_odf_stale_tlb_leak_is_caught``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.analysis import hooks
from repro.errors import SnapshotConsistencyError
from repro.mem.flags import PteFlags, pte_frame, pte_present
from repro.mem.hugepage import HUGE_PAGE_SIZE, HugePage
from repro.mem.pte_table import PteTable
from repro.units import ENTRIES_PER_TABLE, PAGE_SIZE, PTE_TABLE_SPAN


def _digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=16).digest()


_ZERO_PAGE_DIGEST = _digest(bytes(PAGE_SIZE))
_ZERO_HUGE_DIGEST = _digest(bytes(HUGE_PAGE_SIZE))


@dataclass(frozen=True)
class SnapshotMismatch:
    """One divergence between fingerprint and materialized snapshot."""

    kind: str
    vaddr: int
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} at {self.vaddr:#x}: {self.detail}"


class SnapshotOracle:
    """A fork-time fingerprint of one address space."""

    def __init__(
        self,
        pages: dict[int, bytes],
        huge: dict[int, bytes],
        source: str,
    ) -> None:
        #: page virtual address -> content digest
        self.pages = pages
        #: huge-page base virtual address -> content digest
        self.huge = huge
        self.source = source

    # -- capture ---------------------------------------------------------

    @classmethod
    def capture(cls, mm) -> "SnapshotOracle":
        """Fingerprint ``mm``'s logical memory right now."""
        # Checker-internal reads must not appear as program accesses to
        # the race detector.
        with hooks.suppressed():
            return cls._capture(mm)

    @classmethod
    def _capture(cls, mm) -> "SnapshotOracle":
        pages: dict[int, bytes] = {}
        huge: dict[int, bytes] = {}
        for base, child in cls._iter_pmd_slots(mm):
            if isinstance(child, HugePage):
                huge[base] = _digest(child.read(0, HUGE_PAGE_SIZE))
                continue
            if not isinstance(child, PteTable):
                continue
            for i in range(ENTRIES_PER_TABLE):
                pte = child.get(i)
                if not pte:
                    continue
                vaddr = base + i * PAGE_SIZE
                if pte_present(pte) or (pte & int(PteFlags.SPECIAL)):
                    pages[vaddr] = _digest(
                        mm.frames.read(pte_frame(pte), 0, PAGE_SIZE)
                    )
                elif pte & int(PteFlags.SWAP):
                    slot = pte_frame(pte)
                    pages[vaddr] = _digest(mm.frames.swap.load(slot))
        return cls(pages, huge, source=mm.name)

    @staticmethod
    def _iter_pmd_slots(mm):
        pgd = mm.page_table.pgd
        for pgd_i, pud in pgd.present_slots():
            for pud_i, pmd in pud.present_slots():
                for pmd_i, child in pmd.present_slots():
                    base = (
                        (pgd_i * ENTRIES_PER_TABLE + pud_i)
                        * ENTRIES_PER_TABLE
                        + pmd_i
                    ) * PTE_TABLE_SPAN
                    yield base, child

    # -- verification ----------------------------------------------------

    def verify(
        self, child_mm, pending_parent=None
    ) -> list[SnapshotMismatch]:
        """Diff a child's materialized snapshot against the fingerprint.

        While an async-fork session is still copying, pass the parent's
        address space as ``pending_parent``: a page the child lacks is
        then acceptable iff the parent's covering PMD slot still carries
        the not-yet-copied marker *and* the parent's current content
        still matches the fingerprint (any parent write would have
        forced a proactive synchronization first, §4.3).
        """
        with hooks.suppressed():
            return self._verify(child_mm, pending_parent)

    def _verify(
        self, child_mm, pending_parent=None
    ) -> list[SnapshotMismatch]:
        child = SnapshotOracle.capture(child_mm)
        mismatches: list[SnapshotMismatch] = []

        for vaddr, digest in sorted(self.pages.items()):
            got = child.pages.get(vaddr)
            if got == digest:
                continue
            if got is not None:
                mismatches.append(
                    SnapshotMismatch(
                        "content-mismatch",
                        vaddr,
                        "child page content differs from the fork-time "
                        "fingerprint",
                    )
                )
                continue
            if digest == _ZERO_PAGE_DIGEST:
                continue  # an absent page reads as zeros — consistent
            if pending_parent is not None and self._still_pending(
                pending_parent, vaddr, digest
            ):
                continue
            mismatches.append(
                SnapshotMismatch(
                    "missing-page",
                    vaddr,
                    "fingerprinted page is absent from the child "
                    "snapshot",
                )
            )

        for vaddr, got in sorted(child.pages.items()):
            if vaddr not in self.pages and got != _ZERO_PAGE_DIGEST:
                mismatches.append(
                    SnapshotMismatch(
                        "extra-page",
                        vaddr,
                        "child snapshot contains a page the parent did "
                        "not have at fork time",
                    )
                )

        for base, digest in sorted(self.huge.items()):
            got = child.huge.get(base)
            if got == digest:
                continue
            if got is None and digest == _ZERO_HUGE_DIGEST:
                continue
            mismatches.append(
                SnapshotMismatch(
                    "content-mismatch" if got is not None else "missing-page",
                    base,
                    "huge-page snapshot diverged from the fork-time "
                    "fingerprint",
                )
            )
        for base, got in sorted(child.huge.items()):
            if base not in self.huge and got != _ZERO_HUGE_DIGEST:
                mismatches.append(
                    SnapshotMismatch(
                        "extra-page",
                        base,
                        "child snapshot maps a huge page the parent did "
                        "not have at fork time",
                    )
                )
        return mismatches

    def _still_pending(self, parent_mm, vaddr: int, digest: bytes) -> bool:
        """Not yet copied: parent slot marked and content unmodified."""
        found = parent_mm.page_table.walk_pmd(vaddr)
        if found is None:
            return False
        pmd, idx = found
        if not pmd.is_write_protected(idx):
            return False
        pte = parent_mm.page_table.get_pte(vaddr)
        if not pte_present(pte):
            return False
        current = _digest(parent_mm.frames.read(pte_frame(pte), 0, PAGE_SIZE))
        return current == digest

    def verify_observed(self, child_mm) -> list[SnapshotMismatch]:
        """Diff what the child actually *reads* against the fingerprint.

        Reads go through ``read_memory`` and therefore the child's TLB —
        a stale translation (Table 1) produces an observed mismatch even
        though :meth:`verify` finds the page tables consistent.
        """
        mismatches: list[SnapshotMismatch] = []
        for vaddr, digest in sorted(self.pages.items()):
            observed = _digest(child_mm.read_memory(vaddr, PAGE_SIZE))
            if observed != digest:
                mismatches.append(
                    SnapshotMismatch(
                        "observed-content-mismatch",
                        vaddr,
                        "the child observes different bytes than the "
                        "parent had at fork time",
                    )
                )
        for base, digest in sorted(self.huge.items()):
            observed = _digest(child_mm.read_memory(base, HUGE_PAGE_SIZE))
            if observed != digest:
                mismatches.append(
                    SnapshotMismatch(
                        "observed-content-mismatch",
                        base,
                        "the child observes different huge-page bytes "
                        "than the parent had at fork time",
                    )
                )
        return mismatches

    def assert_consistent(
        self, child_mm, pending_parent=None, observed: bool = False
    ) -> None:
        """Raise :class:`SnapshotConsistencyError` on any divergence."""
        if observed:
            mismatches = self.verify_observed(child_mm)
        else:
            mismatches = self.verify(child_mm, pending_parent)
        if mismatches:
            lines = "\n".join(f"  - {m}" for m in mismatches)
            raise SnapshotConsistencyError(
                f"snapshot of {self.source!r} diverged in "
                f"{len(mismatches)} place(s):\n{lines}",
                mismatches,
            )
