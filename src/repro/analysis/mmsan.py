"""MMSAN — the memory-management sanitizer.

A :class:`Mmsan` instance watches a set of address spaces that share one
:class:`~repro.mem.frames.FrameAllocator` and audits the invariants the
paper's algorithms depend on:

* ``mapcount-mismatch`` / ``hugepage-mapcount-mismatch`` — the
  ``struct page`` / :class:`~repro.mem.hugepage.HugePage` map counts
  must equal the number of PTEs/PMD slots actually referencing the
  frame across every tracked address space;
* ``dangling-frame`` — a PTE references a frame the allocator has
  already freed;
* ``share-count-mismatch`` — ODF's per-PTE-table share counter must be
  exactly (number of PMD slots sharing the leaf) − 1;
* ``writable-shared-frame`` / ``writable-zero-page`` /
  ``writable-shared-hugepage`` — every CoW-shared frame must be
  write-protected somewhere on its walk path, and nothing may map the
  zero page writable;
* ``shared-table-unmarked`` — a PMD slot referencing an ODF-shared leaf
  must carry the software write-protect marker;
* ``stale-pmd-marker`` / ``marker-desync`` (opt-in ``pmd_markers``) —
  the async-fork copied-marker state machine: a write-protected PMD
  slot is legal only while the leaf is ODF-shared or an active
  async-fork session covers the parent; and the parent's marker must be
  cleared once the child's corresponding slot is populated (§4.2/§4.4);
* ``stale-tlb-translation`` / ``stale-writable-tlb`` — a cached TLB
  entry must agree with the current PTE, and an entry installed by a
  write must not survive a PTE-level write-protection downgrade
  (the missed-shootdown bugs of Table 1);
* ``leaked-reference`` / ``unreachable-frame`` (opt-in
  ``strict_leaks``) — allocated frames no tracked page table can reach.

Audits are read-only and callable at any quiescent point; the fork
engines call them through :mod:`repro.analysis.runtime`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis import hooks
from repro.errors import MmsanViolationError
from repro.mem.flags import pte_frame, pte_present, pte_writable
from repro.mem.frames import FrameAllocator
from repro.mem.hugepage import HugePage
from repro.mem.pte_table import PteTable
from repro.units import ENTRIES_PER_TABLE, PTE_TABLE_SPAN

ZERO_FRAME = 0


@dataclass(frozen=True)
class MmsanViolation:
    """One violated invariant."""

    rule: str
    mm: Optional[str]
    detail: str

    def __str__(self) -> str:
        where = f" [{self.mm}]" if self.mm else ""
        return f"{self.rule}{where}: {self.detail}"


@dataclass
class _LeafSighting:
    """Everywhere one unique PTE table appears across the tracked mms."""

    leaf: PteTable
    #: ``(mm, pmd, idx, base_vaddr)`` per referencing PMD slot.
    slots: list


@dataclass
class _HugeSighting:
    huge: HugePage
    slots: list


class Mmsan:
    """Invariant auditor over the address spaces of one frame allocator."""

    def __init__(self, frames: FrameAllocator) -> None:
        self.frames = frames
        self._mms: list[weakref.ReferenceType] = []

    # -- tracking --------------------------------------------------------

    def track(self, mm) -> None:
        """Start auditing an address space (idempotent)."""
        if mm.frames is not self.frames:
            raise ValueError(
                "address space uses a different frame allocator"
            )
        if any(ref() is mm for ref in self._mms):
            return
        self._mms.append(weakref.ref(mm))

    def track_process(self, process) -> None:
        """Convenience: track a :class:`~repro.kernel.task.Process`."""
        self.track(process.mm)

    def mms(self) -> list:
        """Live, still-materialized tracked address spaces."""
        out = []
        for ref in self._mms:
            mm = ref()
            if mm is None:
                continue
            # A torn-down process frees its PGD frame; skip the husk.
            if not self.frames.is_allocated(mm.page_table.pgd.page.frame):
                continue
            if mm not in out:
                out.append(mm)
        return out

    # -- the walk --------------------------------------------------------

    @staticmethod
    def _iter_pmd_children(mm) -> Iterator[tuple]:
        """Yield ``(pmd, idx, child, base_vaddr)`` over one page table."""
        pgd = mm.page_table.pgd
        for pgd_i, pud in pgd.present_slots():
            for pud_i, pmd in pud.present_slots():
                for pmd_i, child in pmd.present_slots():
                    base = (
                        (pgd_i * ENTRIES_PER_TABLE + pud_i)
                        * ENTRIES_PER_TABLE
                        + pmd_i
                    ) * PTE_TABLE_SPAN
                    yield pmd, pmd_i, child, base

    @staticmethod
    def _table_frames(mm) -> set[int]:
        frames = {mm.page_table.pgd.page.frame}
        for _, pud in mm.page_table.pgd.present_slots():
            frames.add(pud.page.frame)
            for _, pmd in pud.present_slots():
                frames.add(pmd.page.frame)
                for _, child in pmd.present_slots():
                    if isinstance(child, PteTable):
                        frames.add(child.page.frame)
        return frames

    @staticmethod
    def _active_async_sessions(mm) -> list:
        """Fork sessions subscribed to ``mm``'s checkpoints as parent."""
        sessions = []
        for sub in mm.checkpoint_subscribers:
            owner = getattr(sub, "__self__", None)
            if owner is None or not getattr(owner, "active", False):
                continue
            parent = getattr(owner, "parent", None)
            child = getattr(owner, "child", None)
            if parent is None or child is None:
                continue
            if getattr(parent, "mm", None) is mm:
                sessions.append(owner)
        return sessions

    # -- auditing --------------------------------------------------------

    def audit(
        self,
        *,
        pmd_markers: bool = False,
        strict_leaks: bool = False,
    ) -> list[MmsanViolation]:
        """Cross-check every invariant; return the violations found.

        ``pmd_markers`` additionally validates the async-fork PMD
        copied-marker state machine — keep it off for flows that
        legitimately leave markers behind (a finished ODF session's
        leftovers are cleared lazily by the fault handler).
        ``strict_leaks`` additionally reports unreachable frames with a
        zero mapcount, which only a teardown-shaped test can assert.
        """
        # Checker-internal reads must not appear as program accesses to
        # the race detector.
        with hooks.suppressed():
            return self._audit(
                pmd_markers=pmd_markers, strict_leaks=strict_leaks
            )

    def _audit(
        self,
        *,
        pmd_markers: bool = False,
        strict_leaks: bool = False,
    ) -> list[MmsanViolation]:
        v: list[MmsanViolation] = []
        mms = self.mms()

        leaves: dict[int, _LeafSighting] = {}
        huges: dict[int, _HugeSighting] = {}
        reachable: set[int] = set()
        for mm in mms:
            reachable |= self._table_frames(mm)
            for pmd, idx, child, base in self._iter_pmd_children(mm):
                if isinstance(child, HugePage):
                    sighting = huges.setdefault(
                        id(child), _HugeSighting(child, [])
                    )
                    sighting.slots.append((mm, pmd, idx, base))
                elif isinstance(child, PteTable):
                    sighting = leaves.setdefault(
                        id(child), _LeafSighting(child, [])
                    )
                    sighting.slots.append((mm, pmd, idx, base))

        # Expected data-frame reference counts: each *unique* leaf
        # contributes once, however many PMD slots share it (ODF does
        # not raise data-page mapcounts when sharing a table).
        expected: dict[int, int] = {}
        for sighting in leaves.values():
            for i in sighting.leaf.referencing_indices():
                frame = pte_frame(sighting.leaf.get(i))
                if frame == ZERO_FRAME:
                    continue
                expected[frame] = expected.get(frame, 0) + 1

        for frame, count in sorted(expected.items()):
            reachable.add(frame)
            if not self.frames.is_allocated(frame):
                v.append(
                    MmsanViolation(
                        "dangling-frame",
                        None,
                        f"frame {frame} is referenced by {count} PTE(s) "
                        "but is not allocated",
                    )
                )
                continue
            actual = self.frames.page(frame).mapcount
            if actual != count:
                v.append(
                    MmsanViolation(
                        "mapcount-mismatch",
                        None,
                        f"frame {frame}: mapcount={actual} but "
                        f"{count} PTE(s) reference it",
                    )
                )

        self._check_leaves(v, leaves, pmd_markers)
        self._check_huge(v, huges)
        self._check_tlbs(v, mms)
        self._check_leaks(v, reachable, strict_leaks)
        return v

    def assert_clean(
        self,
        *,
        pmd_markers: bool = False,
        strict_leaks: bool = False,
    ) -> None:
        """Raise :class:`MmsanViolationError` unless the audit is clean."""
        violations = self.audit(
            pmd_markers=pmd_markers, strict_leaks=strict_leaks
        )
        if violations:
            lines = "\n".join(f"  - {viol}" for viol in violations)
            raise MmsanViolationError(
                f"MMSAN found {len(violations)} violation(s):\n{lines}",
                violations,
            )

    # -- individual checks ----------------------------------------------

    def _check_leaves(
        self,
        v: list[MmsanViolation],
        leaves: dict[int, _LeafSighting],
        pmd_markers: bool,
    ) -> None:
        for sighting in leaves.values():
            leaf = sighting.leaf
            occurrences = len(sighting.slots)
            share = leaf.page.share_count
            if share != occurrences - 1:
                v.append(
                    MmsanViolation(
                        "share-count-mismatch",
                        None,
                        f"pte-table frame {leaf.page.frame}: "
                        f"share_count={share} but the table appears in "
                        f"{occurrences} PMD slot(s)",
                    )
                )
            for mm, pmd, idx, base in sighting.slots:
                slot_wp = pmd.is_write_protected(idx)
                if share > 0 and not slot_wp:
                    v.append(
                        MmsanViolation(
                            "shared-table-unmarked",
                            mm.name,
                            f"PMD slot at {base:#x} references shared "
                            f"pte-table frame {leaf.page.frame} without "
                            "the write-protect marker",
                        )
                    )
                self._check_cow(v, mm, leaf, base, slot_wp)
                if pmd_markers and slot_wp and share == 0:
                    self._check_marker(v, mm, pmd, idx, base, leaf)

    def _check_cow(
        self, v: list[MmsanViolation], mm, leaf: PteTable, base: int, slot_wp: bool
    ) -> None:
        from repro.units import PAGE_SIZE

        for i in leaf.present_indices():
            pte = leaf.get(i)
            if not pte_writable(pte):
                continue
            frame = pte_frame(pte)
            vaddr = base + i * PAGE_SIZE
            if frame == ZERO_FRAME:
                v.append(
                    MmsanViolation(
                        "writable-zero-page",
                        mm.name,
                        f"PTE at {vaddr:#x} maps the zero page writable",
                    )
                )
                continue
            if not self.frames.is_allocated(frame):
                continue  # reported as dangling-frame already
            if self.frames.page(frame).mapcount > 1 and not slot_wp:
                v.append(
                    MmsanViolation(
                        "writable-shared-frame",
                        mm.name,
                        f"PTE at {vaddr:#x} maps CoW-shared frame "
                        f"{frame} (mapcount="
                        f"{self.frames.page(frame).mapcount}) writable",
                    )
                )

    def _check_marker(
        self, v: list[MmsanViolation], mm, pmd, idx: int, base: int, leaf: PteTable
    ) -> None:
        """A write-protected PMD slot over an unshared leaf needs an owner."""
        sessions = self._active_async_sessions(mm)
        if not sessions:
            v.append(
                MmsanViolation(
                    "stale-pmd-marker",
                    mm.name,
                    f"PMD slot at {base:#x} is write-protected but the "
                    "leaf is unshared and no active fork session covers "
                    "this address space",
                )
            )
            return
        for session in sessions:
            child_mm = session.child.mm
            found = child_mm.page_table.walk_pmd(base)
            if found is not None and found[0].is_present(found[1]):
                v.append(
                    MmsanViolation(
                        "marker-desync",
                        mm.name,
                        f"PMD slot at {base:#x} still carries the "
                        "copied-marker although the child's slot is "
                        "already populated",
                    )
                )

    def _check_huge(
        self, v: list[MmsanViolation], huges: dict[int, _HugeSighting]
    ) -> None:
        for sighting in huges.values():
            hp = sighting.huge
            occurrences = len(sighting.slots)
            if hp.mapcount != occurrences:
                v.append(
                    MmsanViolation(
                        "hugepage-mapcount-mismatch",
                        None,
                        f"huge page at {sighting.slots[0][3]:#x}: "
                        f"mapcount={hp.mapcount} but {occurrences} PMD "
                        "slot(s) map it",
                    )
                )
            if hp.mapcount > 1 or occurrences > 1:
                for mm, pmd, idx, base in sighting.slots:
                    if not pmd.is_write_protected(idx):
                        v.append(
                            MmsanViolation(
                                "writable-shared-hugepage",
                                mm.name,
                                f"PMD slot at {base:#x} maps a CoW-shared "
                                "huge page writable",
                            )
                        )

    def _check_tlbs(self, v: list[MmsanViolation], mms: list) -> None:
        for mm in mms:
            for page, frame, writable in mm.tlb.entries():
                pte = mm.page_table.get_pte(page)
                if not pte_present(pte) or pte_frame(pte) != frame:
                    v.append(
                        MmsanViolation(
                            "stale-tlb-translation",
                            mm.name,
                            f"TLB caches {page:#x} -> frame {frame} but "
                            "the PTE no longer maps that frame "
                            "(missed shootdown)",
                        )
                    )
                elif writable and not pte_writable(pte):
                    v.append(
                        MmsanViolation(
                            "stale-writable-tlb",
                            mm.name,
                            f"TLB entry for {page:#x} was installed by a "
                            "write but the PTE has been write-protected "
                            "since (downgrade without flush)",
                        )
                    )

    def _check_leaks(
        self, v: list[MmsanViolation], reachable: set[int], strict: bool
    ) -> None:
        for frame in sorted(self.frames.frames()):
            if frame in reachable:
                continue
            page = self.frames.page(frame)
            if page.mapcount > 0:
                v.append(
                    MmsanViolation(
                        "leaked-reference",
                        None,
                        f"frame {frame} (tags={sorted(page.tags)}) has "
                        f"mapcount={page.mapcount} but no tracked page "
                        "table reaches it",
                    )
                )
            elif strict:
                v.append(
                    MmsanViolation(
                        "unreachable-frame",
                        None,
                        f"frame {frame} (tags={sorted(page.tags)}) is "
                        "allocated but unreachable from every tracked "
                        "page table",
                    )
                )
