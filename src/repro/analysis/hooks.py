"""Zero-dependency instrumentation hooks for the simulated kernel.

The low-level substrate (:mod:`repro.mem.page_struct`,
:mod:`repro.mem.vma`, :mod:`repro.kernel.clock`,
:mod:`repro.mem.address_space`) notifies these registries on lock
traffic and address-space creation.  The registries are empty by
default and every call site guards on truthiness, so the instrumented
paths cost one attribute read when no checker is installed.

This module must not import anything from :mod:`repro` — it sits below
the whole dependency graph.
"""

from __future__ import annotations

from typing import Callable

#: Lock classes reported through :data:`LOCK_HOOKS`.
PAGE_LOCK = "page"
KERNEL_SECTION = "kernel-section"
TWO_WAY_POINTER = "two-way-pointer"

#: ``fn(event, lock_class, key)`` with ``event`` in {'acquire','release'}.
LOCK_HOOKS: list[Callable[[str, str, object], None]] = []

#: ``fn(mm)`` called from ``AddressSpace.__init__``.
MM_HOOKS: list[Callable[[object], None]] = []


def notify_lock(event: str, lock_class: str, key: object) -> None:
    """Report a lock acquisition or release to installed trackers."""
    for fn in list(LOCK_HOOKS):
        fn(event, lock_class, key)


def notify_mm_created(mm: object) -> None:
    """Report a freshly created address space to installed trackers."""
    for fn in list(MM_HOOKS):
        fn(mm)


def clear() -> None:
    """Remove every installed hook (test isolation)."""
    LOCK_HOOKS.clear()
    MM_HOOKS.clear()
