"""Zero-dependency instrumentation hooks for the simulated kernel.

The low-level substrate (:mod:`repro.mem.page_struct`,
:mod:`repro.mem.vma`, :mod:`repro.kernel.clock`,
:mod:`repro.mem.address_space`) notifies these registries on lock
traffic, address-space creation, memory-substrate accesses and
synchronization edges.  The registries are empty by default and every
call site guards on truthiness, so the instrumented paths cost one
attribute read when no checker is installed.

Logical contexts
----------------
The simulation is cooperative and single-threaded, but it *models*
concurrent actors: the parent's user path, the child's user path, the
async-fork copy threads.  :func:`push_context`/:func:`pop_context`
maintain a stack of context keys so checkers (the happens-before race
detector in :mod:`repro.analysis.race`) can attribute every event to
the logical actor performing it.  Context keys are plain hashables —
``"main"`` (the driver), ``("user", mm_name)`` (a process's user
path), ``("copy", child_name, worker_id)`` (a copy thread).

Pushing or popping a context creates **no** happens-before edge: the
driver's interleaving is one schedule, and ordering must come only
from the explicit synchronization the kernel actually has (locks,
kernel sections, TLB shootdowns, fork/exit edges).

This module must not import anything from :mod:`repro` — it sits below
the whole dependency graph.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

#: Lock classes reported through :data:`LOCK_HOOKS`.
PAGE_LOCK = "page"
KERNEL_SECTION = "kernel-section"
TWO_WAY_POINTER = "two-way-pointer"

#: ``fn(event, lock_class, key)`` with ``event`` in {'acquire','release'}.
LOCK_HOOKS: list[Callable[[str, str, object], None]] = []

#: ``fn(mm)`` called from ``AddressSpace.__init__``.
MM_HOOKS: list[Callable[[object], None]] = []

#: ``fn(op, space, key)`` with ``op`` in {'read','write','atomic'} and
#: ``space`` in {'pte','frame','mapcount'}; ``key`` identifies the
#: object (a frame number).  Fired by the memory substrate on every
#: instrumented access.
ACCESS_HOOKS: list[Callable[[str, str, object], None]] = []

#: ``fn(kind, src, dst)`` — an explicit happens-before edge between two
#: logical contexts.  ``kind`` is a label ('fork', 'publish', 'join',
#: 'tlb-flush'); ``src`` is a context key or ``None`` for the current
#: context; ``dst`` is a context key (for 'tlb-flush' the *owner name*
#: of the flushed TLB, which checkers map to that process's user
#: context).
EDGE_HOOKS: list[Callable[[str, object, object], None]] = []

#: The logical-context stack; index -1 is the current context.
CONTEXT_STACK: list[object] = ["main"]

#: While positive, :func:`notify_access` drops events (checker-internal
#: reads such as MMSAN audits and snapshot-oracle fingerprinting must
#: not appear as program accesses).
_suppress_depth = 0


def notify_lock(event: str, lock_class: str, key: object) -> None:
    """Report a lock acquisition or release to installed trackers."""
    for fn in list(LOCK_HOOKS):
        fn(event, lock_class, key)


def notify_mm_created(mm: object) -> None:
    """Report a freshly created address space to installed trackers."""
    for fn in list(MM_HOOKS):
        fn(mm)


def notify_access(op: str, space: str, key: object) -> None:
    """Report one memory-substrate access (unless suppressed)."""
    if _suppress_depth:
        return
    for fn in list(ACCESS_HOOKS):
        fn(op, space, key)


def notify_edge(kind: str, src: object, dst: object) -> None:
    """Report an explicit happens-before edge between contexts."""
    for fn in list(EDGE_HOOKS):
        fn(kind, src, dst)


# -- logical contexts ----------------------------------------------------


def current_context() -> object:
    """The context key of the logical actor currently executing."""
    return CONTEXT_STACK[-1]


def push_context(key: object) -> None:
    """Enter a logical context (no happens-before edge implied)."""
    CONTEXT_STACK.append(key)


def pop_context() -> None:
    """Leave the innermost logical context."""
    if len(CONTEXT_STACK) > 1:
        CONTEXT_STACK.pop()


@contextmanager
def context(key: object):
    """Scope a logical context over a block."""
    push_context(key)
    try:
        yield
    finally:
        pop_context()


@contextmanager
def suppressed():
    """Scope in which accesses are invisible (checker-internal reads)."""
    global _suppress_depth
    _suppress_depth += 1
    try:
        yield
    finally:
        _suppress_depth -= 1


def clear() -> None:
    """Remove every installed hook and reset contexts (test isolation)."""
    global _suppress_depth
    LOCK_HOOKS.clear()
    MM_HOOKS.clear()
    ACCESS_HOOKS.clear()
    EDGE_HOOKS.clear()
    del CONTEXT_STACK[1:]
    _suppress_depth = 0
