"""The proxy/balancer tier in front of the sharded cluster."""

from repro.proxy.core import ClusterProxy, ShardHealth, TenantConfig
from repro.proxy.frontend import ProxyFrontend

__all__ = [
    "ClusterProxy",
    "ProxyFrontend",
    "ShardHealth",
    "TenantConfig",
]
