"""A shard-pooling proxy: tenancy, metering, health, connection limits.

:class:`ClusterProxy` is the "millions of users" tier of ROADMAP item
2: many tenants share one :class:`~repro.cluster.cluster.SimCluster`
behind a single entry point.  Per command it

* resolves the tenant by longest keyspace-prefix match and meters the
  call in a :class:`~repro.metrics.usage.UsageMeter`;
* routes keyed commands through an embedded
  :class:`~repro.cluster.client.ClusterClient` (MOVED/ASK following,
  slot-cache refresh — a reshard under the proxy is invisible to
  tenants beyond the redirect RTTs);
* routes keyless commands to a *healthy* shard, round-robin over the
  shards whose per-shard :class:`~repro.repl.detector.FailureDetector`
  has not declared them down (PING probes advance each shard's
  ``last_master_contact_ns``, exactly the contract the PR 7 detector
  reads from replicas).

Connection admission is per tenant: ``connect``/``release`` enforce
``TenantConfig.max_connections`` and the meter records refusals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cluster.client import ClusterClient, ClusterReply
from repro.cluster.slots import command_keys
from repro.errors import NetworkPartitionError
from repro.kvs.resp import RespError
from repro.metrics.usage import UsageMeter
from repro.repl.detector import FailureDetector
from repro.sim.network import NetworkLink
from repro.units import ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import SimCluster


@dataclass(frozen=True)
class TenantConfig:
    """One tenant: a keyspace prefix plus admission limits."""

    name: str
    #: Keys starting with this prefix belong to the tenant; the empty
    #: prefix is the catch-all.  Longest match wins.
    prefix: str = ""
    #: Concurrent connections admitted; 0 means unlimited.
    max_connections: int = 0


class ShardHealth:
    """One shard's liveness record, shaped like a replica node.

    Exposes the two attributes :class:`~repro.repl.detector.
    FailureDetector` reads — ``name`` and ``last_master_contact_ns`` —
    so the proxy reuses the PR 7 quorum detector unchanged (quorum 1:
    the proxy is the only observer of its shard links).
    """

    def __init__(self, shard_id: int, now_ns: int) -> None:
        self.shard_id = shard_id
        self.name = f"shard{shard_id}"
        self.last_master_contact_ns = now_ns
        self.probes_ok = 0
        self.probes_failed = 0


class ClusterProxy:
    """Routes tenant traffic into the cluster through one entry point."""

    def __init__(
        self,
        cluster: "SimCluster",
        tenants: tuple[TenantConfig, ...] = (),
        link: Optional[NetworkLink] = None,
        max_redirects: int = 5,
        health_timeout_ns: int = ms(50),
        probe_interval_ns: int = ms(10),
    ) -> None:
        self.cluster = cluster
        self.client = ClusterClient(
            cluster, link=link, max_redirects=max_redirects
        )
        self.meter = UsageMeter()
        #: Longest prefix first, so the most specific tenant wins; a
        #: catch-all (empty prefix) is appended when none is given.
        ranked = sorted(tenants, key=lambda t: len(t.prefix), reverse=True)
        if not any(t.prefix == "" for t in ranked):
            ranked.append(TenantConfig("shared", prefix=""))
        self.tenants: tuple[TenantConfig, ...] = tuple(ranked)
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self._by_name = {t.name: t for t in self.tenants}
        self._active_connections = {t.name: 0 for t in self.tenants}
        now = cluster.clock.now
        self.health = [
            ShardHealth(shard.shard_id, now) for shard in cluster.shards
        ]
        self.detectors = [
            FailureDetector([record], timeout_ns=health_timeout_ns, quorum=1)
            for record in self.health
        ]
        self.probe_interval_ns = probe_interval_ns
        self._last_probe_ns: Optional[int] = None
        self._keyless_rr = 0

    # ------------------------------------------------------------------
    # tenancy and admission
    # ------------------------------------------------------------------

    def tenant_for_key(self, key: bytes) -> TenantConfig:
        """Longest-prefix tenant of one key (catch-all guarantees a hit)."""
        text = key.decode("utf-8", errors="replace")
        for tenant in self.tenants:
            if text.startswith(tenant.prefix):
                return tenant
        raise AssertionError("unreachable: catch-all tenant always matches")

    def connect(self, tenant_name: str) -> bool:
        """Admit one connection for a tenant; ``False`` when at limit."""
        tenant = self._by_name[tenant_name]
        usage = self.meter.usage(tenant_name)
        active = self._active_connections[tenant_name]
        if tenant.max_connections and active >= tenant.max_connections:
            usage.connections_refused += 1
            return False
        self._active_connections[tenant_name] = active + 1
        usage.connections_opened += 1
        return True

    def release(self, tenant_name: str) -> None:
        """Return one admitted connection."""
        active = self._active_connections[tenant_name]
        if active <= 0:
            raise ValueError(f"tenant {tenant_name!r} has no connection out")
        self._active_connections[tenant_name] = active - 1
        self.meter.usage(tenant_name).connections_closed += 1

    def active_connections(self, tenant_name: str) -> int:
        return self._active_connections[tenant_name]

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def probe(self) -> list[int]:
        """PING every shard; returns the ids that answered.

        A successful reply advances the shard's ``last_master_contact_ns``
        — the only signal its failure detector reads.  Partitioned or
        erroring shards simply do not advance and age toward down.
        """
        self._last_probe_ns = self.cluster.clock.now
        alive = []
        for record in self.health:
            try:
                reply = self.client.execute_on(record.shard_id, b"PING")
            except NetworkPartitionError:
                record.probes_failed += 1
                continue
            if isinstance(reply.value, RespError):
                record.probes_failed += 1
                continue
            record.probes_ok += 1
            record.last_master_contact_ns = self.cluster.clock.now
            alive.append(record.shard_id)
        return alive

    def _maybe_probe(self) -> None:
        now = self.cluster.clock.now
        if (
            self._last_probe_ns is None
            or now - self._last_probe_ns >= self.probe_interval_ns
        ):
            self.probe()

    def healthy_shards(self) -> list[int]:
        """Shards whose detector does not currently declare them down."""
        now = self.cluster.clock.now
        return [
            record.shard_id
            for record, detector in zip(self.health, self.detectors)
            if not detector.check(now)
        ]

    def health_snapshot(self) -> dict[str, int]:
        """Dotted health counters (merged into reports next to usage)."""
        snap: dict[str, int] = {}
        healthy = set(self.healthy_shards())
        for record in self.health:
            base = f"proxy.health.{record.name}"
            snap[f"{base}.ok"] = record.probes_ok
            snap[f"{base}.failed"] = record.probes_failed
            snap[f"{base}.healthy"] = int(record.shard_id in healthy)
        return dict(sorted(snap.items()))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def execute(self, *command) -> ClusterReply:
        """Route one command; meter it under its tenant."""
        parts = [
            part.encode() if isinstance(part, str) else bytes(part)
            for part in command
        ]
        self._maybe_probe()
        name = parts[0].upper()
        keys = command_keys(name, parts[1:], strict=True)
        if keys:
            tenant = self.tenant_for_key(keys[0])
            reply = self.client.execute(*parts)
        else:
            tenant = self._by_name.get("shared") or self.tenants[-1]
            reply = self.client.execute_on(self._pick_keyless(), *parts)
        self.meter.record_command(
            tenant.name,
            name,
            keyed=bool(keys),
            rtt_ns=reply.rtt_ns,
            redirects=reply.redirects,
            error=isinstance(reply.value, RespError),
        )
        return reply

    def _pick_keyless(self) -> int:
        """Round-robin over healthy shards (all shards when none are)."""
        healthy = self.healthy_shards()
        if not healthy:
            healthy = [shard.shard_id for shard in self.cluster.shards]
        self._keyless_rr += 1
        return healthy[self._keyless_rr % len(healthy)]

    def metrics_snapshot(self) -> dict[str, int]:
        """Usage + health + routing counters under dotted names."""
        snap = dict(self.meter.snapshot())
        snap.update(self.health_snapshot())
        snap["proxy.client.moved_redirects"] = self.client.moved_redirects
        snap["proxy.client.ask_redirects"] = self.client.ask_redirects
        snap["proxy.client.slot_cache_refreshes"] = (
            self.client.slot_cache_refreshes
        )
        snap["proxy.client.commands_sent"] = self.client.commands_sent
        return dict(sorted(snap.items()))
