"""RESP front end for the proxy: one wire endpoint, many shards.

:class:`ProxyFrontend` subclasses :class:`~repro.kvs.server.
CommandServer` so the PR 9 net layer (``NetSession``/``ReproServer``)
serves it unchanged: ``repro-serve --proxy`` binds one TCP port whose
backend fans out to a whole :class:`~repro.cluster.cluster.SimCluster`.
The subclass keeps the base's wire interface (``feed``/``handle``,
``on_command``, ``info_extra``) but replaces dispatch:

* keyed commands route through :class:`~repro.proxy.core.ClusterProxy`
  (slot routing, MOVED/ASK following, per-tenant metering), so a live
  reshard under the endpoint stays invisible to wire clients;
* ``BGSAVE``/``FLUSHALL`` broadcast to every shard and ``DBSIZE`` sums
  across them — the machine-wide reading a proxy client expects;
* ``CLUSTER`` forwards to a healthy shard (the slot map is shared, any
  shard answers) and stays in ``_handlers`` so sessions report
  ``mode=cluster`` in ``HELLO``;
* ``PROXY`` exposes the tenancy/health/usage counters over the wire.

The frontend's ``engine`` is shard 0's — shards share one simulated
clock, which is exactly what the :class:`~repro.net.bridge.ClockBridge`
needs to stall the event loop for any shard's kernel-busy window.
"""

from __future__ import annotations

from repro.cluster.slots import NUM_SLOTS
from repro.errors import (
    NetworkPartitionError,
    TooManyRedirectsError,
    UnroutableCommandError,
)
from repro.kvs import resp
from repro.kvs.resp import OK, RespError, RespValue
from repro.kvs.server import CommandServer
from repro.proxy.core import ClusterProxy


class ProxyFrontend(CommandServer):
    """A CommandServer whose keyspace is an entire cluster."""

    def __init__(self, proxy: ClusterProxy) -> None:
        # Shard 0's engine supplies the shared clock and AOF handle the
        # net layer reads; the proxy never serves keys from it directly.
        super().__init__(proxy.cluster.shards[0].engine, save_points=())
        self.proxy = proxy
        #: Commands the frontend answers itself instead of routing.
        self._local = {
            b"INFO": self._proxy_info,
            b"BGSAVE": self._broadcast_bgsave,
            b"FLUSHALL": self._broadcast_flushall,
            b"DBSIZE": self._sum_dbsize,
            b"CLUSTER": self._forward_cluster,
            b"PROXY": self._proxy_admin,
        }
        # Advertise CLUSTER so NetSession reports mode=cluster and does
        # not shadow it with the standalone stub.
        for name, handler in self._local.items():
            self.register_handler(name, handler, replace=True)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, command) -> RespValue:
        """Route one parsed command array through the proxy.

        ServerCron is *not* run here: every routed command reaches a
        shard through ``ShardedCommandServer.feed``, which runs that
        shard's own cron (stepping its snapshot child cooperatively).
        """
        if not isinstance(command, list) or not command:
            return RespError("ERR protocol: expected a command array")
        first = command[0]
        if not isinstance(first, (bytes, bytearray)):
            return RespError("ERR protocol: command name must be a string")
        parts = [
            bytes(p) if isinstance(p, (bytes, bytearray)) else p
            for p in command
        ]
        name = parts[0].upper()
        if self.on_command is not None:
            self.on_command(name, parts[1:])
        local = self._local.get(name)
        try:
            if local is not None:
                return local(parts[1:])
            reply = self.proxy.execute(*parts)
            return reply.value
        except RespError as err:
            return err
        except UnroutableCommandError as exc:
            return RespError(f"ERR {exc}")
        except TooManyRedirectsError as exc:
            return RespError(f"CLUSTERDOWN {exc}")
        except NetworkPartitionError as exc:
            return RespError(f"ERR shard unreachable: {exc}")

    # ------------------------------------------------------------------
    # machine-wide commands
    # ------------------------------------------------------------------

    def _broadcast_bgsave(self, args) -> RespValue:
        self._arity(args, 0, "bgsave")
        for shard in self.proxy.cluster.shards:
            reply = self.proxy.client.execute_on(shard.shard_id, b"BGSAVE")
            if isinstance(reply.value, RespError):
                return reply.value
        return resp.SimpleString(b"Background saving started")

    def _broadcast_flushall(self, args) -> RespValue:
        self._arity(args, 0, "flushall")
        for shard in self.proxy.cluster.shards:
            reply = self.proxy.client.execute_on(shard.shard_id, b"FLUSHALL")
            if isinstance(reply.value, RespError):
                return reply.value
        return OK

    def _sum_dbsize(self, args) -> RespValue:
        self._arity(args, 0, "dbsize")
        total = 0
        for shard in self.proxy.cluster.shards:
            reply = self.proxy.client.execute_on(shard.shard_id, b"DBSIZE")
            if isinstance(reply.value, RespError):
                return reply.value
            total += reply.value
        return total

    def _forward_cluster(self, args) -> RespValue:
        # Any shard can answer: the slot map is one shared object.
        shard_id = self.proxy._pick_keyless()
        reply = self.proxy.client.execute_on(shard_id, b"CLUSTER", *args)
        return reply.value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _proxy_admin(self, args) -> RespValue:
        """PROXY TENANTS|USAGE <tenant>|METRICS — proxy observability."""
        if not args:
            raise RespError(
                "ERR wrong number of arguments for 'proxy' command"
            )
        sub = bytes(args[0]).upper()
        if sub == b"TENANTS":
            return [t.name.encode() for t in self.proxy.tenants]
        if sub == b"USAGE":
            self._arity(args, 2, "proxy usage")
            tenant = bytes(args[1]).decode("utf-8", "replace")
            ledger = self.proxy.meter.usage(tenant)
            out: list = []
            for key, value in ledger.as_dict().items():
                out += [key.encode(), value]
            return out
        if sub == b"METRICS":
            out = []
            for key, value in self.proxy.metrics_snapshot().items():
                out += [key.encode(), value]
            return out
        raise RespError(f"ERR unknown PROXY subcommand {sub.decode()!r}")

    def _proxy_info(self, args) -> RespValue:
        cluster = self.proxy.cluster
        healthy = self.proxy.healthy_shards()
        migrating = sum(
            len(shard.server.migrating) for shard in cluster.shards
        )
        importing = sum(
            len(shard.server.importing) for shard in cluster.shards
        )
        fields = {
            "role": "proxy",
            "fork_engine": cluster.method,
            "proxy_shards": len(cluster.shards),
            "proxy_healthy_shards": len(healthy),
            "proxy_tenants": len(self.proxy.tenants),
            "cluster_slots": NUM_SLOTS,
            "migrating_slots": migrating,
            "importing_slots": importing,
            "db_keys": cluster.total_keys(),
            "proxy_commands_routed": self.proxy.client.commands_sent,
            "proxy_moved_redirects": self.proxy.client.moved_redirects,
            "proxy_ask_redirects": self.proxy.client.ask_redirects,
            "proxy_slot_cache_refreshes": (
                self.proxy.client.slot_cache_refreshes
            ),
        }
        if self.info_extra is not None:
            fields.update(self.info_extra())
        text = "".join(f"{k}:{v}\r\n" for k, v in fields.items())
        return text.encode()
