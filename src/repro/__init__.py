"""Reproduction of *Async-fork* (VLDB 2023).

Async-fork mitigates the query latency spikes that the fork-based snapshot
mechanism causes in in-memory key-value stores, by offloading the dominant
cost of ``fork()`` — copying the page table — from the parent process to
the child, with proactive synchronization keeping the snapshot consistent.

The original system is a Linux kernel patch; this library reproduces it on
top of a simulated kernel:

* :mod:`repro.mem` — the memory-management substrate (page tables, VMAs,
  TLBs, CoW, frame allocation);
* :mod:`repro.kernel` — processes, simulated time, the calibrated cost
  model, and the baseline fork engines (default fork, On-Demand-Fork);
* :mod:`repro.core` — **Async-fork itself** (Algorithm 1, proactive
  synchronization, two-way pointers, error rollback, cgroup policy);
* :mod:`repro.kvs` — a Redis/KeyDB-like store whose values live on
  simulated pages, with BGSAVE snapshots and AOF rewriting;
* :mod:`repro.sim`, :mod:`repro.workload`, :mod:`repro.metrics` — the
  discrete-event timing tier and measurement machinery;
* :mod:`repro.experiments` — one runner per paper figure/table.

Quickstart::

    from repro import AsyncFork, Process, FrameAllocator

    frames = FrameAllocator()
    parent = Process(frames, name="redis")
    vma = parent.mm.mmap(1 << 20)          # 1 MiB heap
    parent.mm.write_memory(vma.start, b"hello")

    result = AsyncFork().fork(parent)       # microsecond parent call
    result.session.run_to_completion()      # child copies PMD/PTEs
    assert result.child.mm.read_memory(vma.start, 5) == b"hello"
"""

from repro.config import (
    AsyncForkConfig,
    EngineConfig,
    SimulationProfile,
    WorkloadConfig,
    active_profile,
)
from repro.core import AsyncFork, AsyncForkSession, ForkPolicy, MemCgroup
from repro.errors import (
    ConfigurationError,
    ForkError,
    OutOfMemoryError,
    ReproError,
)
from repro.kernel import Clock, CostModel, DEFAULT_COSTS, Process
from repro.kernel.forks import DefaultFork, ForkResult, ForkStats, OnDemandFork
from repro.mem import AddressSpace, FrameAllocator, PageTable, Tlb, Vma

__version__ = "1.0.0"

__all__ = [
    "AddressSpace",
    "AsyncFork",
    "AsyncForkConfig",
    "AsyncForkSession",
    "Clock",
    "ConfigurationError",
    "CostModel",
    "DEFAULT_COSTS",
    "DefaultFork",
    "EngineConfig",
    "ForkError",
    "ForkPolicy",
    "ForkResult",
    "ForkStats",
    "FrameAllocator",
    "MemCgroup",
    "OnDemandFork",
    "OutOfMemoryError",
    "PageTable",
    "Process",
    "ReproError",
    "SimulationProfile",
    "Tlb",
    "Vma",
    "WorkloadConfig",
    "active_profile",
    "__version__",
]
