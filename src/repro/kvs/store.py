"""The key-value store proper.

Keys live in a Python dict (modelling Redis's main hash table, whose
footprint is dominated by the values for the 1 KiB-value workloads of the
paper); values live on simulated pages via :class:`JemallocArena`, so every
SET is a real write to simulated memory — dirtying pages, triggering CoW
after a fork, and (under Async-fork) proactive synchronizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import KvsError
from repro.kvs.allocator import JemallocArena
from repro.mem.address_space import AddressSpace
from repro.units import PAGE_SIZE, page_align_down


@dataclass(frozen=True)
class ValueRef:
    """Location of one stored value inside the process heap."""

    vaddr: int
    length: int


class KvStore:
    """String key -> byte-string value store over simulated memory."""

    def __init__(self, mm: AddressSpace, arena: Optional[JemallocArena] = None):
        self.mm = mm
        self.arena = arena if arena is not None else JemallocArena(mm)
        self._table: dict[bytes, ValueRef] = {}
        self.dirty_since_save = 0

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: bytes) -> bool:
        return self._normalize(key) in self._table

    @staticmethod
    def _normalize(key) -> bytes:
        if isinstance(key, str):
            return key.encode()
        if isinstance(key, bytes):
            return key
        raise KvsError(f"keys must be str or bytes, not {type(key).__name__}")

    # ------------------------------------------------------------------

    def set(self, key, value: bytes) -> None:
        """SET: store a value, updating in place when the class fits.

        In-place update is the common case for the fixed-size-value
        benchmarks and is what repeatedly dirties the same pages (the
        Gaussian-pattern effect of Figure 12).
        """
        key = self._normalize(key)
        if isinstance(value, str):
            value = value.encode()
        old = self._table.get(key)
        if old is not None and self.arena.usable_size(old.vaddr) >= len(value):
            self.mm.write_memory(old.vaddr, value)
            self._table[key] = ValueRef(old.vaddr, len(value))
        else:
            vaddr = self.arena.zmalloc(max(1, len(value)))
            self.mm.write_memory(vaddr, value)
            if old is not None:
                self.arena.zfree(old.vaddr)
            self._table[key] = ValueRef(vaddr, len(value))
        self.dirty_since_save += 1

    def get(self, key) -> Optional[bytes]:
        """GET: read a value (``None`` when absent)."""
        ref = self._table.get(self._normalize(key))
        if ref is None:
            return None
        return self.mm.read_memory(ref.vaddr, ref.length)

    def delete(self, key) -> bool:
        """DEL: drop a key; returns whether it existed."""
        ref = self._table.pop(self._normalize(key), None)
        if ref is None:
            return False
        self.arena.zfree(ref.vaddr)
        self.dirty_since_save += 1
        return True

    def keys(self) -> Iterator[bytes]:
        """Iterate over keys (unspecified order, like SCAN)."""
        return iter(self._table)

    def items_from(self, mm: AddressSpace) -> Iterator[tuple[bytes, bytes]]:
        """Read every (key, value) pair through *another* address space.

        This is how the forked child serializes the snapshot: it walks the
        key table it inherited and reads the values out of its own memory
        image, which CoW keeps at the fork-time state.

        Values pack many to a page, so the walk reads each backing page
        through ``mm`` once and slices values out of a local page cache —
        the first value touching a page still drives the fault/CoW
        machinery exactly as a direct read would.
        """
        cache: dict[int, bytes] = {}
        for key, ref in self._table.items():
            yield key, _read_paged(mm, ref.vaddr, ref.length, cache)

    def table_snapshot(self) -> dict[bytes, ValueRef]:
        """Shallow copy of the key table, as inherited by a forked child."""
        return dict(self._table)

    def flat_size(self) -> int:
        """Total bytes of stored values."""
        return sum(ref.length for ref in self._table.values())


def _read_paged(
    mm: AddressSpace, vaddr: int, length: int, cache: dict[int, bytes]
) -> bytes:
    """Read ``length`` bytes at ``vaddr``, whole pages at a time.

    Pages are fetched through ``mm.read_memory`` (so faults, the TLB,
    and CoW behave as for any other read) and memoized in ``cache`` for
    the duration of one keyspace walk.
    """
    parts: list[bytes] = []
    offset = 0
    while offset < length:
        here = vaddr + offset
        base = page_align_down(here)
        page = cache.get(base)
        if page is None:
            page = mm.read_memory(base, PAGE_SIZE)
            cache[base] = page
        in_page = here - base
        chunk = min(length - offset, PAGE_SIZE - in_page)
        parts.append(page[in_page : in_page + chunk])
        offset += chunk
    if len(parts) == 1:
        return parts[0]
    return b"".join(parts)
