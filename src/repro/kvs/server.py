"""A RESP command server over the storage engine.

Ties the pieces into something shaped like a real Redis front end:

* RESP2 request parsing / reply encoding (:mod:`repro.kvs.resp`);
* a command table (strings subset + persistence + introspection);
* the classic ``save <seconds> <changes>`` snapshot policy, evaluated
  against the simulated clock like Redis's serverCron;
* cooperative background-job progress: each served command advances an
  in-flight Async-fork child copy by one step, mimicking how the real
  child runs concurrently with the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import (
    CorruptSnapshotError,
    DiskError,
    ForkError,
    KvsError,
    SnapshotInProgressError,
)
from repro.kvs import rdb, resp
from repro.kvs.engine import KvEngine, RewriteJob, SnapshotJob
from repro.kvs.latency_monitor import LatencyMonitor
from repro.kvs.resp import OK, PONG, RespError, RespValue
from repro.units import MSEC, SEC


@dataclass(frozen=True)
class SavePoint:
    """One ``save <seconds> <changes>`` rule."""

    seconds: int
    changes: int

    def due(self, elapsed_ns: int, dirty: int) -> bool:
        """Whether this rule triggers a background save."""
        return elapsed_ns >= self.seconds * SEC and dirty >= self.changes


#: Redis's default rules (redis.conf): the paper quotes the 60 s/10000
#: one as the reason snapshot queries are not rare.
DEFAULT_SAVE_POINTS = (
    SavePoint(3600, 1),
    SavePoint(300, 100),
    SavePoint(60, 10_000),
)


class CommandServer:
    """RESP front end for one engine."""

    def __init__(
        self,
        engine: KvEngine,
        save_points: tuple[SavePoint, ...] = DEFAULT_SAVE_POINTS,
        latency_threshold_ms: float = 0.01,
    ) -> None:
        self.engine = engine
        self.save_points = save_points
        self.parser = resp.Parser()
        #: Redis's latency monitoring framework; the fork event is where
        #: operators first see the snapshot spike ([43], [44]).
        self.latency = LatencyMonitor(threshold_ms=latency_threshold_ms)
        self._last_save_ns = engine.clock.now
        self._active_job: Optional[object] = None
        self._completed_snapshots = 0
        self._failed_jobs = 0
        #: ``ok`` until a background save fails (Redis's
        #: ``rdb_last_bgsave_status``); the next clean save resets it.
        self._last_bgsave_status = "ok"
        #: Optional hook ``fn(job, error_or_None)`` fired whenever a
        #: background job retires — the cluster shard wires supervision
        #: and snapshot-window accounting through it.
        self.on_job_done: Optional[Callable] = None
        #: Report of the most recent completed BGSAVE (cron may reap a
        #: job between two commands, so callers need a place to find it).
        self.last_snapshot_report = None
        #: Optional hook returning extra ``INFO`` fields; the
        #: replication layer attaches its role/offset/link section here.
        self.info_extra: Optional[Callable[[], dict]] = None
        #: Optional observation hook ``fn(name, args)`` fired for every
        #: dispatched command (after cron, before the handler) — the net
        #: layer meters per-command wire traffic through it.
        self.on_command: Optional[Callable] = None
        self._handlers: dict[bytes, Callable] = {
            b"PING": self._ping,
            b"ECHO": self._echo,
            b"SET": self._set,
            b"GET": self._get,
            b"SETNX": self._setnx,
            b"GETSET": self._getset,
            b"APPEND": self._append,
            b"STRLEN": self._strlen,
            b"INCR": self._incr,
            b"INCRBY": self._incrby,
            b"DECR": self._decr,
            b"DECRBY": self._decrby,
            b"MSET": self._mset,
            b"MGET": self._mget,
            b"TYPE": self._type,
            b"EXPIRE": self._expire,
            b"PEXPIRE": self._pexpire,
            b"TTL": self._ttl,
            b"PTTL": self._pttl,
            b"PERSIST": self._persist,
            b"DUMP": self._dump,
            b"RESTORE": self._restore,
            b"DEL": self._del,
            b"UNLINK": self._del,
            b"EXISTS": self._exists,
            b"DBSIZE": self._dbsize,
            b"FLUSHALL": self._flushall,
            b"BGSAVE": self._bgsave,
            b"BGREWRITEAOF": self._bgrewriteaof,
            b"LASTSAVE": self._lastsave,
            b"INFO": self._info,
            b"LATENCY": self._latency,
        }

    # ------------------------------------------------------------------
    # wire interface
    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> bytes:
        """Process raw request bytes; returns the concatenated replies."""
        self.parser.feed(data)
        replies = []
        for command in self.parser:
            replies.append(resp.encode(self.handle(command)))
        return b"".join(replies)

    def handle(self, command) -> RespValue:
        """Dispatch one parsed command array; returns the reply value."""
        self._background_cron()
        if not isinstance(command, list) or not command:
            return RespError("ERR protocol: expected a command array")
        first = command[0]
        if not isinstance(first, (bytes, bytearray)):
            return RespError("ERR protocol: command name must be a string")
        name = bytes(first).upper()
        handler = self._handlers.get(name)
        if self.on_command is not None:
            self.on_command(name, command[1:])
        if handler is None:
            shown = name.decode("utf-8", errors="backslashreplace")
            return RespError(f"ERR unknown command '{shown}'")
        try:
            return handler(command[1:])
        except RespError as err:
            return err

    def register_handler(
        self, name, handler: Callable, *, replace: bool = False
    ) -> None:
        """Add a command to the dispatch table.

        ``name`` is case-insensitive; ``handler(args) -> RespValue``
        follows the same contract as the built-in handlers (raise
        :class:`~repro.kvs.resp.RespError` for client errors).  The net
        layer and subclasses extend the table through this instead of
        poking ``_handlers`` directly.
        """
        key = bytes(
            name.encode() if isinstance(name, str) else name
        ).upper()
        if not replace and key in self._handlers:
            raise ValueError(f"command {key.decode()!r} already registered")
        self._handlers[key] = handler

    # ------------------------------------------------------------------
    # background machinery
    # ------------------------------------------------------------------

    def _background_cron(self) -> None:
        """ServerCron: advance the child copy, reap it, evaluate save points.

        Mirrors Redis's serverCron: while a background job runs, each
        tick steps the child cooperatively and — once the child's copy
        needs no more parent help — completes the job through
        :meth:`_job_done`, so ``LASTSAVE``/``INFO`` advance and the next
        save point can fire without anyone draining the job by hand.
        """
        if self._active_job is not None:
            job = self._active_job
            job.step_child()
            if job.failed or job.child_copy_done:
                self._reap(job)
            return
        elapsed = self.engine.clock.now - self._last_save_ns
        dirty = self.engine.store.dirty_since_save
        if any(p.due(elapsed, dirty) for p in self.save_points):
            try:
                self.attach_job(self.engine.bgsave())
            except SnapshotInProgressError:  # pragma: no cover - defensive
                pass
            except ForkError:
                # §4.4 rollback inside the fork call: bgsave() restored
                # the dirty counter, so the save point stays due and a
                # later cron tick retries.
                self._failed_jobs += 1
                self._last_bgsave_status = "err"

    def _reap(self, job) -> None:
        """Finish (or bury) a background job whose child work is done."""
        try:
            job.finish()
        except (DiskError, ForkError, KvsError) as exc:
            # job.finish() already routed the failure through
            # job.abort(); serverCron records it and frees the slot —
            # it must never propagate an error into a client reply.
            self._job_failed(job, exc)
        else:
            self._job_done(job)

    def _record_fork_latency(self, job) -> None:
        self.latency.record(
            "fork",
            job.result.stats.parent_call_ns,
            at_ns=self.engine.clock.now,
        )

    def attach_job(self, job) -> None:
        """Adopt a background job so serverCron drives it to completion.

        Used by the BGSAVE/BGREWRITEAOF handlers, the save-point cron,
        and external snapshot coordinators (the cluster layer) alike.
        """
        if self._active_job is not None:
            raise SnapshotInProgressError("a background job is running")
        self._active_job = job
        self._record_fork_latency(job)

    def finish_background_job(self):
        """Drain the active background job (tests and shutdown use this)."""
        if self._active_job is None:
            return None
        job = self._active_job
        try:
            outcome = job.finish()
        except BaseException as exc:
            self._job_failed(job, exc)
            raise
        self._job_done(job)
        return outcome

    def _job_done(self, job) -> None:
        if isinstance(job, SnapshotJob):
            self._completed_snapshots += 1
            self._last_save_ns = self.engine.clock.now
            self._last_bgsave_status = "ok"
            self.last_snapshot_report = job.report
        self._active_job = None
        if self.on_job_done is not None:
            self.on_job_done(job, None)

    def _job_failed(self, job, error) -> None:
        self._failed_jobs += 1
        if isinstance(job, SnapshotJob):
            self._last_bgsave_status = "err"
        self._active_job = None
        if self.on_job_done is not None:
            self.on_job_done(job, error)

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    @staticmethod
    def _arity(args, expected: int, name: str) -> None:
        if len(args) != expected:
            raise RespError(
                f"ERR wrong number of arguments for '{name}' command"
            )

    def _ping(self, args) -> RespValue:
        if args:
            self._arity(args, 1, "ping")
            return bytes(args[0])
        return PONG

    def _echo(self, args) -> RespValue:
        self._arity(args, 1, "echo")
        return bytes(args[0])

    def _set(self, args) -> RespValue:
        self._arity(args, 2, "set")
        self.engine.set(bytes(args[0]), bytes(args[1]))
        return OK

    def _get(self, args) -> RespValue:
        self._arity(args, 1, "get")
        return self.engine.get(bytes(args[0]))

    def _setnx(self, args) -> RespValue:
        self._arity(args, 2, "setnx")
        if self.engine.exists(bytes(args[0])):
            return 0
        self.engine.set(bytes(args[0]), bytes(args[1]))
        return 1

    def _getset(self, args) -> RespValue:
        self._arity(args, 2, "getset")
        old = self.engine.get(bytes(args[0]))
        self.engine.set(bytes(args[0]), bytes(args[1]))
        return old

    def _append(self, args) -> RespValue:
        self._arity(args, 2, "append")
        old = self.engine.get(bytes(args[0])) or b""
        value = old + bytes(args[1])
        self.engine.set(bytes(args[0]), value)
        return len(value)

    def _strlen(self, args) -> RespValue:
        self._arity(args, 1, "strlen")
        value = self.engine.get(bytes(args[0]))
        return 0 if value is None else len(value)

    @staticmethod
    def _as_int(raw, what: str = "value") -> int:
        try:
            return int(raw)
        except (TypeError, ValueError):
            raise RespError(
                f"ERR {what} is not an integer or out of range"
            ) from None

    def _incr_by(self, key: bytes, delta: int) -> int:
        current = self.engine.get(key)
        total = (0 if current is None else self._as_int(current)) + delta
        self.engine.set(key, str(total).encode())
        return total

    def _incr(self, args) -> RespValue:
        self._arity(args, 1, "incr")
        return self._incr_by(bytes(args[0]), 1)

    def _incrby(self, args) -> RespValue:
        self._arity(args, 2, "incrby")
        return self._incr_by(bytes(args[0]), self._as_int(args[1]))

    def _decr(self, args) -> RespValue:
        self._arity(args, 1, "decr")
        return self._incr_by(bytes(args[0]), -1)

    def _decrby(self, args) -> RespValue:
        self._arity(args, 2, "decrby")
        return self._incr_by(bytes(args[0]), -self._as_int(args[1]))

    def _mset(self, args) -> RespValue:
        if not args or len(args) % 2:
            raise RespError(
                "ERR wrong number of arguments for 'mset' command"
            )
        for index in range(0, len(args), 2):
            self.engine.set(bytes(args[index]), bytes(args[index + 1]))
        return OK

    def _mget(self, args) -> RespValue:
        if not args:
            raise RespError(
                "ERR wrong number of arguments for 'mget' command"
            )
        return [self.engine.get(bytes(key)) for key in args]

    def _type(self, args) -> RespValue:
        self._arity(args, 1, "type")
        if self.engine.exists(bytes(args[0])):
            return resp.SimpleString(b"string")
        return resp.SimpleString(b"none")

    def _expire(self, args) -> RespValue:
        self._arity(args, 2, "expire")
        seconds = self._as_int(args[1])
        deadline = self.engine.clock.now + seconds * SEC
        return int(self.engine.expire_at(bytes(args[0]), deadline))

    def _pexpire(self, args) -> RespValue:
        self._arity(args, 2, "pexpire")
        millis = self._as_int(args[1])
        deadline = self.engine.clock.now + millis * MSEC
        return int(self.engine.expire_at(bytes(args[0]), deadline))

    def _ttl(self, args) -> RespValue:
        self._arity(args, 1, "ttl")
        remaining = self.engine.ttl_ns(bytes(args[0]))
        if remaining < 0:
            return remaining
        # Redis rounds the remaining TTL *up* to whole seconds.
        return -(-remaining // SEC)

    def _pttl(self, args) -> RespValue:
        self._arity(args, 1, "pttl")
        remaining = self.engine.ttl_ns(bytes(args[0]))
        if remaining < 0:
            return remaining
        return -(-remaining // MSEC)

    def _persist(self, args) -> RespValue:
        self._arity(args, 1, "persist")
        return int(self.engine.persist(bytes(args[0])))

    def _dump(self, args) -> RespValue:
        """DUMP key — serialize one value via the RDB encode path."""
        self._arity(args, 1, "dump")
        value = self.engine.get(bytes(args[0]))
        if value is None:
            return None
        return rdb.dump([(bytes(args[0]), value)]).payload

    def _restore(self, args) -> RespValue:
        """RESTORE key ttl-ms payload [REPLACE] — the MIGRATE landing."""
        if len(args) not in (3, 4):
            raise RespError(
                "ERR wrong number of arguments for 'restore' command"
            )
        replace = False
        if len(args) == 4:
            if bytes(args[3]).upper() != b"REPLACE":
                raise RespError("ERR syntax error")
            replace = True
        key = bytes(args[0])
        ttl_ms = self._as_int(args[1], what="ttl")
        if ttl_ms < 0:
            raise RespError("ERR Invalid TTL value, must be >= 0")
        if not replace and self.engine.exists(key):
            raise RespError("BUSYKEY Target key name already exists.")
        try:
            entries = list(rdb.load(rdb.SnapshotFile(payload=bytes(args[2]))))
        except CorruptSnapshotError:
            raise RespError(
                "ERR Bad data format: DUMP payload did not verify"
            ) from None
        if len(entries) != 1:
            raise RespError(
                "ERR Bad data format: expected exactly one entry"
            )
        self.engine.set(key, entries[0][1])
        if ttl_ms:
            self.engine.expire_at(key, self.engine.clock.now + ttl_ms * MSEC)
        return OK

    def _del(self, args) -> RespValue:
        if not args:
            raise RespError("ERR wrong number of arguments for 'del' command")
        return sum(1 for key in args if self.engine.delete(bytes(key)))

    def _exists(self, args) -> RespValue:
        if not args:
            raise RespError(
                "ERR wrong number of arguments for 'exists' command"
            )
        return sum(1 for key in args if self.engine.exists(bytes(key)))

    def _dbsize(self, args) -> RespValue:
        self._arity(args, 0, "dbsize")
        return len(self.engine.store)

    def _flushall(self, args) -> RespValue:
        self._arity(args, 0, "flushall")
        for key in list(self.engine.store.keys()):
            self.engine.delete(key)
        return OK

    def _bgsave(self, args) -> RespValue:
        self._arity(args, 0, "bgsave")
        if self._active_job is not None:
            raise RespError("ERR Background save already in progress")
        self.attach_job(self.engine.bgsave())
        return resp.SimpleString(b"Background saving started")

    def _bgrewriteaof(self, args) -> RespValue:
        self._arity(args, 0, "bgrewriteaof")
        if self.engine.aof is None:
            raise RespError("ERR AOF is not enabled on this instance")
        if self._active_job is not None:
            raise RespError("ERR Background job already in progress")
        self.attach_job(self.engine.bgrewriteaof())
        return resp.SimpleString(b"Background append only file "
                                 b"rewriting started")

    def _lastsave(self, args) -> RespValue:
        self._arity(args, 0, "lastsave")
        return self._last_save_ns // SEC

    def _latency(self, args) -> RespValue:
        """LATENCY HISTORY|LATEST|RESET|DOCTOR (Redis's framework)."""
        if not args:
            raise RespError(
                "ERR wrong number of arguments for 'latency' command"
            )
        sub = bytes(args[0]).upper()
        if sub == b"HISTORY":
            self._arity(args, 2, "latency history")
            samples = self.latency.history(bytes(args[1]).decode())
            # Redis returns integer *milliseconds* per sample.
            return [
                [s.at_ns // SEC, int(s.duration_ms)]
                for s in samples
            ]
        if sub == b"LATEST":
            rows = []
            for event, sample in sorted(self.latency.latest().items()):
                worst = self.latency.worst(event)
                rows.append(
                    [
                        event.encode(),
                        sample.at_ns // SEC,
                        int(sample.duration_ms),
                        int(worst),
                    ]
                )
            return rows
        if sub == b"RESET":
            events = [bytes(a).decode() for a in args[1:]]
            return self.latency.reset(*events)
        if sub == b"DOCTOR":
            return self.latency.doctor().encode()
        raise RespError(f"ERR unknown LATENCY subcommand {sub.decode()!r}")

    def _info(self, args) -> RespValue:
        job = self._active_job
        fields = {
            "fork_engine": self.engine.fork_engine.name,
            "db_keys": len(self.engine.store),
            "dirty_since_save": self.engine.store.dirty_since_save,
            "rdb_bgsave_in_progress": int(isinstance(job, SnapshotJob)),
            "rdb_last_bgsave_status": self._last_bgsave_status,
            "aof_rewrite_in_progress": int(isinstance(job, RewriteJob)),
            "completed_snapshots": self._completed_snapshots,
            "failed_background_jobs": self._failed_jobs,
            "rss_pages": self.engine.process.mm.rss,
        }
        if self.info_extra is not None:
            fields.update(self.info_extra())
        text = "".join(f"{k}:{v}\r\n" for k, v in fields.items())
        return text.encode()
