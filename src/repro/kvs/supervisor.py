"""Snapshot supervision: retry, watchdog, and graceful degradation.

Production Redis does not simply crash when BGSAVE fails — it retries,
refuses writes when persistence keeps failing (the MISCONF error), and
operators fall back to safer configurations when a mechanism misbehaves.
:class:`SnapshotSupervisor` gives the simulated engine the same
survival instincts, which is what the chaos experiments drive:

* **Retry with backoff** — a failed BGSAVE/BGREWRITEAOF is retried up
  to ``BackoffPolicy.max_attempts`` times, sleeping (on the simulated
  clock) an exponentially growing, jittered delay between attempts so
  a transient fault (one OOM, one disk error) costs one retry, not an
  outage.
* **Watchdog** — a child whose copy threads stop making progress (an
  injected ``hang``, a lost wakeup) is SIGKILLed after a bounded number
  of cooperative steps instead of wedging the engine forever.
* **Degradation state machine** — after ``fallback_after`` consecutive
  §4.4 rollbacks the engine stops trusting Async-fork and demotes to
  the default fork (the paper's own escape hatch: ``F=0`` through the
  cgroup interface, §5.2).  The next clean snapshot re-promotes it.
  Exhausting every retry puts the engine in the writes-refused state
  until a snapshot or fsync succeeds, mirroring Redis's MISCONF.

Every decision is counted in a :class:`~repro.metrics.faults.
FaultCounters` ledger so experiments can assert "every injected fault
was recovered from or surfaced".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.errors import (
    DiskError,
    ForkError,
    SnapshotChildError,
    SnapshotInProgressError,
    SnapshotWatchdogError,
)
from repro.faults.plan import FaultPlan
from repro.kernel.forks.base import ForkEngine
from repro.kernel.forks.default import DefaultFork
from repro.kvs.aof import AppendOnlyFile
from repro.kvs.engine import ForkJob, KvEngine, SnapshotReport
from repro.metrics.faults import FaultCounters
from repro.obs import tracer as obs
from repro.units import ms

#: Degradation modes (what `fork_engine` the engine currently runs).
MODE_ASYNC = "async"
MODE_FALLBACK = "fallback"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential-backoff schedule for snapshot retries."""

    base_ns: int = ms(50)
    factor: float = 2.0
    max_ns: int = ms(800)
    max_attempts: int = 4
    #: Jitter spread passed to :meth:`FaultPlan.jitter_ns` (0 = none).
    jitter: float = 0.5

    def delay_ns(self, attempt: int) -> int:
        """Backoff (pre-jitter) before retry number ``attempt`` (0-based)."""
        return min(int(self.base_ns * self.factor**attempt), self.max_ns)


class SnapshotSupervisor:
    """Retries, watches, and degrades one engine's background saves."""

    def __init__(
        self,
        engine: KvEngine,
        policy: BackoffPolicy = BackoffPolicy(),
        watchdog_steps: int = 2048,
        fallback_after: int = 3,
        plan: Optional[FaultPlan] = None,
        counters: Optional[FaultCounters] = None,
        on_child_step: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.engine = engine
        self.policy = policy
        #: Cooperative child steps before the watchdog declares a hang.
        self.watchdog_steps = watchdog_steps
        #: Consecutive §4.4 rollbacks that trigger the async->default
        #: demotion (the K of the degradation state machine).
        self.fallback_after = fallback_after
        self.plan = plan
        self.counters = counters if counters is not None else FaultCounters()
        #: Called after every cooperative child step while a snapshot is
        #: being watched — the hook chaos workloads use to interleave
        #: parent writes with the child's copy.
        self.on_child_step = on_child_step
        self.consecutive_rollbacks = 0
        #: The engine trusted when healthy (usually Async-fork).
        self._primary: ForkEngine = engine.fork_engine
        self._fallback: Optional[ForkEngine] = None
        self.mode = (
            MODE_ASYNC if self._primary.name == "async" else MODE_FALLBACK
        )
        self.counters.record_mode(engine.clock.now, self.mode)

    # -- supervised operations ---------------------------------------------

    def save(self) -> Optional[SnapshotReport]:
        """BGSAVE with retry/backoff/watchdog.

        Returns the report of the first attempt that completes, or
        ``None`` after every attempt failed — at which point the engine
        is refusing writes.
        """
        return self._supervised("snapshot")

    def rewrite(self) -> Optional[AppendOnlyFile]:
        """BGREWRITEAOF under the same supervision as :meth:`save`."""
        return self._supervised("rewrite")

    def begin_save(self) -> Optional[ForkJob]:
        """Start a supervised BGSAVE without draining it.

        :meth:`save` forks *and* runs the child to completion inline,
        which is right for chaos workloads but wrong for an event loop:
        serverCron (or the cluster coordinator) wants the fork call
        supervised — retried under the backoff policy, counted toward
        demotion — while the child is drained cooperatively, one step
        per served command.  The caller reports the eventual outcome
        back through :meth:`observe_completion`.

        Returns the in-flight job, or ``None`` when a job is already
        running or every fork attempt failed (writes are then refused).
        """
        for attempt in range(self.policy.max_attempts):
            try:
                return self.engine.bgsave()
            except SnapshotInProgressError:
                return None
            except ForkError as exc:
                # §4.4 rollback inside the fork call itself.
                self._note_rollback(self._reason_of(exc))
            if attempt + 1 < self.policy.max_attempts:
                self._backoff(attempt)
        self._refuse_writes()
        return None

    def observe_completion(self, error: Optional[BaseException]) -> None:
        """Feed a cooperatively-drained job's outcome to the state machine.

        The counterpart of :meth:`begin_save`: serverCron reaped the job
        and tells the supervisor whether it finished cleanly (drives
        promotion / MISCONF clearing) or how it died (drives demotion
        after repeated §4.4 rollbacks, or plain failure counting for
        disk errors).
        """
        if error is None:
            self._note_success()
        elif isinstance(error, (ForkError, SnapshotChildError)):
            self._note_rollback(self._reason_of(error))
        else:
            self.counters.record_job_failure(self._reason_of(error))

    def fsync(self) -> bool:
        """Supervised AOF fsync.

        One failure is enough to refuse writes (there is no child to
        retry — the log is on a broken disk); a later success clears
        the state, like Redis re-enabling writes once the AOF fsync
        stops erroring.
        """
        if self.engine.aof is None:
            return True
        try:
            self.engine.aof.fsync()
        except DiskError:
            self.counters.record_job_failure("fsync")
            self._refuse_writes()
            return False
        # A clean fsync re-enables writes, but only a clean *snapshot*
        # re-promotes the fork engine.
        self._clear_refusal()
        return True

    # -- the retry loop ----------------------------------------------------

    def _supervised(
        self, kind: str
    ) -> Optional[Union[SnapshotReport, AppendOnlyFile]]:
        for attempt in range(self.policy.max_attempts):
            try:
                outcome = self._attempt(kind)
            except (ForkError, SnapshotChildError) as exc:
                # A §4.4 rollback (or watchdog kill): the fork machinery
                # itself failed, which counts toward demotion.
                self._note_rollback(self._reason_of(exc))
            except DiskError:
                # The mechanism worked; the disk did not.  Retrying can
                # help, but the failure says nothing about Async-fork.
                self.counters.record_job_failure("disk-write")
            else:
                self._note_success()
                return outcome
            if attempt + 1 < self.policy.max_attempts:
                self._backoff(attempt)
        self._refuse_writes()
        return None

    def _attempt(self, kind: str) -> Union[SnapshotReport, AppendOnlyFile]:
        try:
            job: ForkJob = (
                self.engine.bgsave()
                if kind == "snapshot"
                else self.engine.bgrewriteaof()
            )
        except ForkError:
            # §4.4 case 1: the fork call itself rolled back.  A rewrite
            # already opened its buffer; drop it or the retry deadlocks.
            if self.engine.aof is not None and self.engine.aof.rewriting:
                self.engine.aof.abort_rewrite()
            raise
        self._watch(job)
        return job.finish()

    def _watch(self, job: ForkJob) -> None:
        """Drive the child cooperatively; kill it if it stops finishing."""
        session = job.result.session
        if session is None:
            return
        steps = 0
        while session.active and not session.failed:
            job.step_child()
            steps += 1
            if self.on_child_step is not None and not session.done:
                self.on_child_step(steps)
            if steps > self.watchdog_steps:
                self.counters.watchdog_kills += 1
                if obs.ACTIVE:
                    obs.emit_instant(
                        "kvs.watchdog.kill",
                        obs.CAT_KVS,
                        self.engine.clock.now,
                        kind=job.kind,
                        steps=steps,
                    )
                job.abort(reason="watchdog-timeout")
                raise SnapshotWatchdogError(
                    f"{job.kind} child made no progress in "
                    f"{self.watchdog_steps} steps; killed by watchdog",
                    reason="watchdog-timeout",
                )
        # A dead session is surfaced by job.finish() -> SnapshotChildError.

    def _backoff(self, attempt: int) -> None:
        delay = self.policy.delay_ns(attempt)
        if self.plan is not None and self.policy.jitter > 0:
            delay = self.plan.jitter_ns(delay, spread=self.policy.jitter)
        start = self.engine.clock.now
        self.engine.clock.advance(delay)
        if obs.ACTIVE:
            obs.emit(
                "kvs.retry.backoff",
                obs.CAT_KVS,
                start,
                start + delay,
                attempt=attempt,
            )
        self.counters.retries += 1
        self.counters.backoff_ns += delay

    # -- the degradation state machine -------------------------------------

    def _note_rollback(self, reason: str) -> None:
        self.counters.record_job_failure(reason)
        self.consecutive_rollbacks += 1
        if (
            self.mode == MODE_ASYNC
            and self.consecutive_rollbacks >= self.fallback_after
        ):
            self._demote()

    def _clear_refusal(self) -> None:
        if self.engine.writes_refused:
            self.engine.writes_refused = False
            self.counters.record_recovery("writes-reenabled")

    def _note_success(self) -> None:
        self.consecutive_rollbacks = 0
        self._clear_refusal()
        if self.mode == MODE_FALLBACK and self._primary.name == "async":
            self._promote()

    def _demote(self) -> None:
        """Stop trusting Async-fork; snapshot with the default fork."""
        if self._fallback is None:
            self._fallback = DefaultFork(
                clock=self._primary.clock, costs=self._primary.costs
            )
        self.engine.fork_engine = self._fallback
        self.mode = MODE_FALLBACK
        self.counters.fallbacks += 1
        self.counters.record_mode(self.engine.clock.now, MODE_FALLBACK)
        if obs.ACTIVE:
            obs.emit_instant(
                "kvs.demote",
                obs.CAT_KVS,
                self.engine.clock.now,
                rollbacks=self.consecutive_rollbacks,
            )

    def _promote(self) -> None:
        """A clean snapshot in fallback mode restores the primary."""
        self.engine.fork_engine = self._primary
        self.mode = MODE_ASYNC
        self.consecutive_rollbacks = 0
        self.counters.promotions += 1
        self.counters.record_mode(self.engine.clock.now, MODE_ASYNC)
        if obs.ACTIVE:
            obs.emit_instant(
                "kvs.promote", obs.CAT_KVS, self.engine.clock.now
            )

    def _refuse_writes(self) -> None:
        if not self.engine.writes_refused:
            self.engine.writes_refused = True
            self.counters.refusal_episodes += 1

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _reason_of(exc: Exception) -> str:
        reason = getattr(exc, "reason", None)
        if reason is not None:
            return reason
        return getattr(exc, "phase", None) or type(exc).__name__

    def ledger(self) -> FaultCounters:
        """The counters, synced with the plan's journal and the engine's
        refused-write count."""
        if self.plan is not None:
            recorded = sum(self.counters.faults_by_site.values())
            for event in self.plan.events[recorded:]:
                self.counters.record_fault(event.site, event.kind)
        self.counters.writes_refused = self.engine.refused_write_count
        return self.counters
