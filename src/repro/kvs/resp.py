"""RESP2: the Redis serialization protocol.

The engines in this package are driven programmatically by the harness,
but a reproduction of a Redis-family system should speak its wire
protocol; :mod:`repro.kvs.server` builds a command server on top of this
codec, and the examples use it to feed realistic byte streams.

Implemented: the five RESP2 types (simple strings, errors, integers, bulk
strings, arrays), null bulk/array, and inline commands.  The parser is
incremental — feed it arbitrary chunks and it yields complete values —
because that is how bytes arrive off a socket.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

CRLF = b"\r\n"

RespValue = Union[bytes, int, None, list, "RespError", "SimpleString"]


class SimpleString(bytes):
    """A RESP simple string (``+OK``), distinct from a bulk string."""

    __slots__ = ()


class RespError(Exception):
    """A RESP error reply (``-ERR ...``)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class ProtocolError(Exception):
    """The byte stream violates RESP framing."""


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def encode(value: RespValue) -> bytes:
    """Serialize one value as RESP2."""
    if isinstance(value, SimpleString):
        return b"+" + bytes(value) + CRLF
    if isinstance(value, RespError):
        # Simple errors are line-framed: a message carrying CR/LF (an
        # unknown command name echoed back, say) would desynchronize
        # the stream, so sanitize them to spaces as Redis does.
        message = value.message.replace("\r", " ").replace("\n", " ")
        return b"-" + message.encode() + CRLF
    if isinstance(value, bool):
        raise TypeError("RESP2 has no boolean; reply with an integer")
    if isinstance(value, int):
        return b":" + str(value).encode() + CRLF
    if value is None:
        return b"$-1" + CRLF
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        return b"$" + str(len(data)).encode() + CRLF + data + CRLF
    if isinstance(value, str):
        return encode(value.encode())
    if isinstance(value, (list, tuple)):
        parts = [b"*" + str(len(value)).encode() + CRLF]
        parts.extend(encode(item) for item in value)
        return b"".join(parts)
    raise TypeError(f"cannot encode {type(value).__name__} as RESP")


def encode_command(*args) -> bytes:
    """Serialize a client command as an array of bulk strings."""
    normalized = [
        a if isinstance(a, (bytes, bytearray)) else str(a).encode()
        for a in args
    ]
    return encode(list(normalized))


OK = SimpleString(b"OK")
PONG = SimpleString(b"PONG")


# ---------------------------------------------------------------------------
# incremental parsing
# ---------------------------------------------------------------------------

class Parser:
    """Incremental RESP2 parser.

    Usage::

        parser = Parser()
        parser.feed(chunk)
        for value in parser:
            ...
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw bytes from the wire."""
        self._buffer.extend(data)

    def __iter__(self) -> Iterator[RespValue]:
        while True:
            value = self.parse_one()
            if value is _INCOMPLETE:
                return
            yield value

    # -- internals ---------------------------------------------------------

    def parse_one(self):
        """One complete value, or the _INCOMPLETE sentinel."""
        result, consumed = _parse(bytes(self._buffer), 0)
        if result is _INCOMPLETE:
            return _INCOMPLETE
        del self._buffer[:consumed]
        return result

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete value."""
        return len(self._buffer)


class _Incomplete:
    __repr__ = lambda self: "<incomplete>"  # noqa: E731 pragma: no cover


_INCOMPLETE = _Incomplete()


def _find_line(data: bytes, pos: int) -> Optional[tuple[bytes, int]]:
    end = data.find(CRLF, pos)
    if end < 0:
        return None
    return data[pos:end], end + 2


def _parse(data: bytes, pos: int):
    if pos >= len(data):
        return _INCOMPLETE, pos
    kind = data[pos : pos + 1]
    if kind in b"+-:$*":
        found = _find_line(data, pos + 1)
        if found is None:
            return _INCOMPLETE, pos
        line, after = found
        if kind == b"+":
            return SimpleString(line), after
        if kind == b"-":
            return RespError(line.decode()), after
        if kind == b":":
            try:
                return int(line), after
            except ValueError:
                raise ProtocolError(f"bad integer {line!r}") from None
        if kind == b"$":
            return _parse_bulk(data, line, after)
        return _parse_array(data, line, after)
    # Inline command: a bare line of space-separated words.
    found = _find_line(data, pos)
    if found is None:
        return _INCOMPLETE, pos
    line, after = found
    if not line.strip():
        raise ProtocolError("empty inline command")
    return [bytes(w) for w in line.split()], after


def _parse_bulk(data: bytes, header: bytes, pos: int):
    try:
        length = int(header)
    except ValueError:
        raise ProtocolError(f"bad bulk length {header!r}") from None
    if length == -1:
        return None, pos
    if length < 0:
        raise ProtocolError(f"negative bulk length {length}")
    end = pos + length
    if len(data) < end + 2:
        return _INCOMPLETE, pos
    if data[end : end + 2] != CRLF:
        raise ProtocolError("bulk string missing terminator")
    return data[pos:end], end + 2


def _parse_array(data: bytes, header: bytes, pos: int):
    try:
        count = int(header)
    except ValueError:
        raise ProtocolError(f"bad array length {header!r}") from None
    if count == -1:
        return None, pos
    if count < 0:
        raise ProtocolError(f"negative array length {count}")
    items = []
    for _ in range(count):
        item, pos = _parse(data, pos)
        if item is _INCOMPLETE:
            return _INCOMPLETE, pos
        items.append(item)
    return items, pos
