"""Append-only-file persistence and BGREWRITEAOF (Appendix C).

Redis's second persistence mechanism logs every write command; replaying
the log reconstructs the dataset.  The log grows without bound, so the
engine periodically *rewrites* it: ``fork()`` a child that serializes the
current dataset as the shortest equivalent command sequence, while the
parent keeps appending new commands to a buffer that is concatenated when
the child finishes.  Because it forks, log rewriting suffers the same
latency spikes as BGSAVE — Figure 21 measures exactly that — and benefits
from Async-fork identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


@dataclass
class AofRecord:
    """One logged write command."""

    op: str  # 'SET' or 'DEL'
    key: bytes
    value: Optional[bytes] = None

    def encoded_size(self) -> int:
        """Approximate on-disk size of the record."""
        return (
            len(self.op)
            + len(self.key)
            + (len(self.value) if self.value is not None else 0)
            + 16  # framing overhead
        )


@dataclass
class AppendOnlyFile:
    """The AOF log: an ordered command stream."""

    records: list[AofRecord] = field(default_factory=list)
    #: Commands appended while a rewrite is running (the rewrite buffer).
    rewrite_buffer: list[AofRecord] = field(default_factory=list)
    rewriting: bool = False

    def append(self, record: AofRecord) -> None:
        """Log one write; routed to the rewrite buffer during a rewrite."""
        if self.rewriting:
            self.rewrite_buffer.append(record)
        self.records.append(record)

    @property
    def size(self) -> int:
        """Current log size in bytes."""
        return sum(r.encoded_size() for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    # -- rewrite protocol --------------------------------------------------

    def begin_rewrite(self) -> None:
        """Parent side: start buffering (called right before the fork)."""
        if self.rewriting:
            raise RuntimeError("AOF rewrite already in progress")
        self.rewriting = True
        self.rewrite_buffer = []

    def complete_rewrite(
        self, compact: Iterable[AofRecord]
    ) -> "AppendOnlyFile":
        """Install the child's compact log + the buffered tail."""
        if not self.rewriting:
            raise RuntimeError("no AOF rewrite in progress")
        new_records = list(compact) + list(self.rewrite_buffer)
        self.records = new_records
        self.rewrite_buffer = []
        self.rewriting = False
        return self

    def abort_rewrite(self) -> None:
        """Drop rewrite state after a failed fork/rewrite."""
        self.rewriting = False
        self.rewrite_buffer = []


def compact_commands(
    entries: Iterable[tuple[bytes, bytes]]
) -> Iterator[AofRecord]:
    """The child's rewrite: one SET per live key."""
    for key, value in entries:
        yield AofRecord("SET", key, value)


def replay(records: Iterable[AofRecord]) -> dict[bytes, bytes]:
    """Reconstruct the dataset from a log (used at simulated reboot)."""
    data: dict[bytes, bytes] = {}
    for record in records:
        if record.op == "SET":
            assert record.value is not None
            data[record.key] = record.value
        elif record.op == "DEL":
            data.pop(record.key, None)
        else:
            raise ValueError(f"unknown AOF op {record.op!r}")
    return data
