"""Append-only-file persistence and BGREWRITEAOF (Appendix C).

Redis's second persistence mechanism logs every write command; replaying
the log reconstructs the dataset.  The log grows without bound, so the
engine periodically *rewrites* it: ``fork()`` a child that serializes the
current dataset as the shortest equivalent command sequence, while the
parent keeps appending new commands to a buffer that is concatenated when
the child finishes.  Because it forks, log rewriting suffers the same
latency spikes as BGSAVE — Figure 21 measures exactly that — and benefits
from Async-fork identically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import CorruptAofError, FsyncFailedError
from repro.faults.plan import SITE_AOF_FSYNC, FaultPlan


@dataclass
class AofRecord:
    """One logged write command."""

    op: str  # 'SET' or 'DEL'
    key: bytes
    value: Optional[bytes] = None

    def encoded_size(self) -> int:
        """Approximate on-disk size of the record."""
        return (
            len(self.op)
            + len(self.key)
            + (len(self.value) if self.value is not None else 0)
            + 16  # framing overhead
        )


@dataclass
class AppendOnlyFile:
    """The AOF log: an ordered command stream."""

    records: list[AofRecord] = field(default_factory=list)
    #: Commands appended while a rewrite is running (the rewrite buffer).
    rewrite_buffer: list[AofRecord] = field(default_factory=list)
    rewriting: bool = False
    #: Chaos plan injecting at the ``kvs.aof.fsync`` site.
    fault_plan: Optional[FaultPlan] = None
    #: Records appended since the last successful :meth:`fsync`.
    unsynced: int = 0
    #: Successful fsyncs performed.
    fsyncs: int = 0

    def append(self, record: AofRecord) -> None:
        """Log one write; routed to the rewrite buffer during a rewrite."""
        if self.rewriting:
            self.rewrite_buffer.append(record)
        self.records.append(record)
        self.unsynced += 1

    def fsync(self) -> None:
        """Flush appended records to stable storage.

        Raises :class:`~repro.errors.FsyncFailedError` when the fault
        plan schedules an ``fsync-error``; the engine's supervision
        layer reacts by refusing writes, like Redis's MISCONF state.
        """
        if self.fault_plan is not None:
            spec = self.fault_plan.fire(
                SITE_AOF_FSYNC, unsynced=self.unsynced
            )
            if spec is not None:
                raise FsyncFailedError(
                    f"injected fsync failure ({self.unsynced} unsynced "
                    "record(s))"
                )
        self.unsynced = 0
        self.fsyncs += 1

    @property
    def size(self) -> int:
        """Current log size in bytes."""
        return sum(r.encoded_size() for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    # -- rewrite protocol --------------------------------------------------

    def begin_rewrite(self) -> None:
        """Parent side: start buffering (called right before the fork)."""
        if self.rewriting:
            raise RuntimeError("AOF rewrite already in progress")
        self.rewriting = True
        self.rewrite_buffer = []

    def complete_rewrite(
        self, compact: Iterable[AofRecord]
    ) -> "AppendOnlyFile":
        """Install the child's compact log + the buffered tail."""
        if not self.rewriting:
            raise RuntimeError("no AOF rewrite in progress")
        new_records = list(compact) + list(self.rewrite_buffer)
        self.records = new_records
        self.rewrite_buffer = []
        self.rewriting = False
        return self

    def abort_rewrite(self) -> None:
        """Drop rewrite state after a failed fork/rewrite."""
        self.rewriting = False
        self.rewrite_buffer = []


def compact_commands(
    entries: Iterable[tuple[bytes, bytes]]
) -> Iterator[AofRecord]:
    """The child's rewrite: one SET per live key."""
    for key, value in entries:
        yield AofRecord("SET", key, value)


# -- on-disk form ----------------------------------------------------------

#: Record framing: op byte, key length, value length (-1 = no value).
_FRAME = struct.Struct("<BII")
_OPS = {"SET": 1, "DEL": 2}
_OPS_REV = {code: op for op, code in _OPS.items()}
_NO_VALUE = 0xFFFFFFFF


def encode(log: AppendOnlyFile) -> bytes:
    """Serialize the log to its on-disk byte form."""
    parts: list[bytes] = []
    for record in log.records:
        value = record.value
        vlen = _NO_VALUE if value is None else len(value)
        op = _OPS.get(record.op)
        if op is None:
            raise ValueError(f"unknown AOF op {record.op!r}")
        parts.append(_FRAME.pack(op, len(record.key), vlen))
        parts.append(record.key)
        if value is not None:
            parts.append(value)
    return b"".join(parts)


def decode(
    data: bytes, repair: bool = False
) -> tuple[AppendOnlyFile, int]:
    """Parse an on-disk AOF back into a log.

    Returns ``(log, dropped_bytes)``.  A torn tail — the crash-mid-
    append case — either raises :class:`~repro.errors.CorruptAofError`
    (``repair=False``) or, like Redis with ``aof-load-truncated yes``,
    is dropped and every complete record before it is kept
    (``repair=True``, ``dropped_bytes`` reports the loss).
    """
    records: list[AofRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        start = offset
        if offset + _FRAME.size > total:
            return _torn(data, records, start, repair, "torn frame header")
        op_code, klen, vlen = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size
        op = _OPS_REV.get(op_code)
        if op is None:
            return _torn(
                data, records, start, repair, f"bad op byte {op_code:#x}"
            )
        if offset + klen > total:
            return _torn(data, records, start, repair, "torn key")
        key = data[offset : offset + klen]
        offset += klen
        value = None
        if vlen != _NO_VALUE:
            if offset + vlen > total:
                return _torn(data, records, start, repair, "torn value")
            value = data[offset : offset + vlen]
            offset += vlen
        if op == "SET" and value is None:
            return _torn(data, records, start, repair, "SET without value")
        records.append(AofRecord(op, key, value))
    return AppendOnlyFile(records=records), 0


def _torn(
    data: bytes,
    records: list[AofRecord],
    start: int,
    repair: bool,
    why: str,
) -> tuple[AppendOnlyFile, int]:
    dropped = len(data) - start
    if not repair:
        raise CorruptAofError(
            f"AOF damaged at byte {start}: {why} "
            f"({dropped} trailing byte(s); pass repair=True to truncate)"
        )
    return AppendOnlyFile(records=records), dropped


def replay(records: Iterable[AofRecord]) -> dict[bytes, bytes]:
    """Reconstruct the dataset from a log (used at simulated reboot)."""
    data: dict[bytes, bytes] = {}
    for record in records:
        if record.op == "SET":
            assert record.value is not None
            data[record.key] = record.value
        elif record.op == "DEL":
            data.pop(record.key, None)
        else:
            raise ValueError(f"unknown AOF op {record.op!r}")
    return data
