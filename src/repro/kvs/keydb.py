"""KeyDB: the multi-threaded IMKVS of the paper's evaluation.

KeyDB is a Redis fork that serves queries from several worker threads
(four in §6.1) in front of a shared keyspace.  The functional behaviour of
fork-based snapshots is identical to Redis — one process, one heap, one
``fork()`` — so :class:`KeyDbEngine` reuses :class:`KvEngine` and adds the
thread structure the *timing* tier needs: queries are served by
``config.threads`` parallel servers, which raises throughput and softens
(but does not remove) the fork-induced stalls, as Figures 9/10/18 show.
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig
from repro.kernel.forks.base import ForkEngine
from repro.kvs.engine import KvEngine
from repro.mem.frames import FrameAllocator

KEYDB_DEFAULT_THREADS = 4


class KeyDbEngine(KvEngine):
    """A KeyDB-like engine: same store, multiple serving threads."""

    def __init__(
        self,
        fork_engine: Optional[ForkEngine] = None,
        config: Optional[EngineConfig] = None,
        frames: Optional[FrameAllocator] = None,
        name: str = "keydb",
    ) -> None:
        if config is None:
            config = EngineConfig(threads=KEYDB_DEFAULT_THREADS)
        elif config.threads == 1:
            # A KeyDB instance is multi-threaded by definition.
            config = EngineConfig(
                value_size=config.value_size,
                key_range=config.key_range,
                threads=KEYDB_DEFAULT_THREADS,
                aof_enabled=config.aof_enabled,
            )
        super().__init__(fork_engine, config, frames, name)

    @property
    def server_threads(self) -> int:
        """Number of query-serving threads (4 in the paper's setup)."""
        return self.config.threads
