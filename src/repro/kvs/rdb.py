"""Point-in-time snapshot serialization (the RDB file).

A deliberately simple but complete binary format::

    magic 'SRDB' | u32 count | count * (u32 klen | key | u32 vlen | value)

The *content* matters to tests (the child must serialize exactly the
fork-time state); the *size* matters to the timing tier (persist duration
= bytes / disk bandwidth).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import CorruptSnapshotError

MAGIC = b"SRDB"


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass
class SnapshotFile:
    """An RDB-like snapshot image plus bookkeeping."""

    payload: bytes = b""
    entry_count: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Bytes the child wrote to disk."""
        return len(self.payload)


def dump(entries: Iterable[tuple[bytes, bytes]]) -> SnapshotFile:
    """Serialize (key, value) pairs into a snapshot file."""
    parts = [MAGIC, b"\x00\x00\x00\x00"]  # count patched afterwards
    count = 0
    for key, value in entries:
        parts.append(struct.pack("<I", len(key)))
        parts.append(key)
        parts.append(struct.pack("<I", len(value)))
        parts.append(value)
        count += 1
    payload = b"".join(parts)
    payload = MAGIC + struct.pack("<I", count) + payload[8:]
    return SnapshotFile(
        payload=payload,
        entry_count=count,
        meta={"digest": _digest(payload)},
    )


def verify(snapshot: SnapshotFile) -> None:
    """Check the payload against the digest recorded at dump time.

    Raises :class:`~repro.errors.CorruptSnapshotError` on a mismatch
    (bit-rot, truncation).  Snapshots without a recorded digest —
    hand-built test fixtures — are only magic-checked.
    """
    payload = snapshot.payload
    if payload[:4] != MAGIC:
        raise CorruptSnapshotError("not a snapshot file")
    expected = snapshot.meta.get("digest")
    if expected is not None and _digest(payload) != expected:
        raise CorruptSnapshotError(
            "snapshot payload does not match its recorded digest"
        )


def load(snapshot: SnapshotFile) -> Iterator[tuple[bytes, bytes]]:
    """Parse a snapshot file back into (key, value) pairs.

    Raises :class:`~repro.errors.CorruptSnapshotError` (a ``ValueError``
    subclass, so old callers' expectations hold) on digest mismatch or a
    payload too damaged to parse.
    """
    verify(snapshot)
    payload = snapshot.payload
    (count,) = struct.unpack_from("<I", payload, 4)
    offset = 8
    try:
        for _ in range(count):
            (klen,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            key = payload[offset : offset + klen]
            offset += klen
            if len(key) != klen:
                raise CorruptSnapshotError("snapshot truncated inside a key")
            (vlen,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            value = payload[offset : offset + vlen]
            offset += vlen
            if len(value) != vlen:
                raise CorruptSnapshotError(
                    "snapshot truncated inside a value"
                )
            yield key, value
    except struct.error as exc:
        raise CorruptSnapshotError(f"snapshot truncated: {exc}") from exc
