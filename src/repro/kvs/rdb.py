"""Point-in-time snapshot serialization (the RDB file).

A deliberately simple but complete binary format::

    magic 'SRDB' | u32 count | count * (u32 klen | key | u32 vlen | value)

The *content* matters to tests (the child must serialize exactly the
fork-time state); the *size* matters to the timing tier (persist duration
= bytes / disk bandwidth).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator

MAGIC = b"SRDB"


@dataclass
class SnapshotFile:
    """An RDB-like snapshot image plus bookkeeping."""

    payload: bytes = b""
    entry_count: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Bytes the child wrote to disk."""
        return len(self.payload)


def dump(entries: Iterable[tuple[bytes, bytes]]) -> SnapshotFile:
    """Serialize (key, value) pairs into a snapshot file."""
    parts = [MAGIC, b"\x00\x00\x00\x00"]  # count patched afterwards
    count = 0
    for key, value in entries:
        parts.append(struct.pack("<I", len(key)))
        parts.append(key)
        parts.append(struct.pack("<I", len(value)))
        parts.append(value)
        count += 1
    payload = b"".join(parts)
    payload = MAGIC + struct.pack("<I", count) + payload[8:]
    return SnapshotFile(payload=payload, entry_count=count)


def load(snapshot: SnapshotFile) -> Iterator[tuple[bytes, bytes]]:
    """Parse a snapshot file back into (key, value) pairs."""
    payload = snapshot.payload
    if payload[:4] != MAGIC:
        raise ValueError("not a snapshot file")
    (count,) = struct.unpack_from("<I", payload, 4)
    offset = 8
    for _ in range(count):
        (klen,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        key = payload[offset : offset + klen]
        offset += klen
        (vlen,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        value = payload[offset : offset + vlen]
        offset += vlen
        yield key, value
