"""Recovery: rebuilding an engine from its persistence artifacts.

The point of the snapshot and the AOF is the reboot path (§2.2: "played
again after the database reboots to reconstruct the original dataset").
These helpers close that loop so tests and examples can verify the whole
persistence cycle: serve -> snapshot/log -> crash -> recover -> serve.

Redis loads the AOF when both are present (it is the more complete
history); :func:`recover` follows that rule.
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig
from repro.kernel.forks.base import ForkEngine
from repro.kvs import rdb
from repro.kvs.aof import AppendOnlyFile, replay
from repro.kvs.engine import KvEngine


def load_snapshot(engine: KvEngine, snapshot: rdb.SnapshotFile) -> int:
    """Populate an engine from a snapshot file; returns keys loaded."""
    count = 0
    for key, value in rdb.load(snapshot):
        engine.store.set(key, value)
        count += 1
    engine.store.dirty_since_save = 0
    return count


def load_aof(engine: KvEngine, log: AppendOnlyFile) -> int:
    """Replay an AOF into an engine; returns keys in the final state."""
    state = replay(log.records)
    for key, value in state.items():
        engine.store.set(key, value)
    if engine.aof is not None:
        # The reconstructed log: one SET per live key (what a rewrite
        # would produce), so the engine can keep appending to it.
        from repro.kvs.aof import compact_commands

        engine.aof.records = list(compact_commands(state.items()))
    engine.store.dirty_since_save = 0
    return len(state)


def recover(
    snapshot: Optional[rdb.SnapshotFile] = None,
    aof: Optional[AppendOnlyFile] = None,
    fork_engine: Optional[ForkEngine] = None,
    config: Optional[EngineConfig] = None,
) -> KvEngine:
    """Boot a fresh engine from whatever persistence artifacts survive.

    Prefers the AOF when both exist (Redis's rule: the log is the more
    complete history).  With neither, returns an empty engine.
    """
    if config is None:
        config = EngineConfig(aof_enabled=aof is not None)
    engine = KvEngine(fork_engine=fork_engine, config=config)
    if aof is not None:
        load_aof(engine, aof)
    elif snapshot is not None:
        load_snapshot(engine, snapshot)
    return engine
