"""Recovery: rebuilding an engine from its persistence artifacts.

The point of the snapshot and the AOF is the reboot path (§2.2: "played
again after the database reboots to reconstruct the original dataset").
These helpers close that loop so tests and examples can verify the whole
persistence cycle: serve -> snapshot/log -> crash -> recover -> serve.

Redis loads the AOF when both are present (it is the more complete
history); :func:`recover` follows that rule.

The reboot path is also where disk damage surfaces, so recovery is
hardened the way Redis is:

* A *torn AOF tail* (crash mid-append) is truncated to the last
  complete record, like ``aof-load-truncated yes`` (``repair=True``,
  the default); ``repair=False`` surfaces
  :class:`~repro.errors.CorruptAofError` instead.
* A snapshot whose payload fails its dump-time digest
  (:func:`repro.kvs.rdb.verify`) is skipped and recovery *falls back
  to the next generation* — pass the retained generations newest-first
  via ``snapshots``.  Only when every generation is corrupt does the
  error propagate.
* :func:`recover_combined` replays an AOF tail on top of a snapshot
  base — the snapshot + incremental-log layout.

Every decision is written into a :class:`RecoveryReport` left on the
engine as ``engine.last_recovery``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.config import EngineConfig
from repro.errors import CorruptSnapshotError
from repro.kernel.forks.base import ForkEngine
from repro.kvs import rdb
from repro.kvs import aof as aof_mod
from repro.kvs.aof import AppendOnlyFile, replay
from repro.kvs.engine import KvEngine


@dataclass
class RecoveryReport:
    """What the reboot path did, artifact by artifact."""

    #: 'aof', 'snapshot', 'snapshot+aof', or 'empty'.
    source: str = "empty"
    keys_loaded: int = 0
    #: Bytes dropped repairing a torn AOF tail (0 = clean log).
    aof_bytes_dropped: int = 0
    #: Index (0 = newest) of the snapshot generation actually loaded.
    snapshot_generation: Optional[int] = None
    #: Generations skipped because they failed verification.
    generations_skipped: int = 0
    #: Human-readable event trail ('torn-tail-repaired', ...).
    events: list = field(default_factory=list)

    def note(self, event: str) -> None:
        """Append one event to the trail."""
        self.events.append(event)


def load_snapshot(engine: KvEngine, snapshot: rdb.SnapshotFile) -> int:
    """Populate an engine from a snapshot file; returns keys loaded.

    Raises :class:`~repro.errors.CorruptSnapshotError` when the payload
    fails verification or parsing.
    """
    count = 0
    for key, value in rdb.load(snapshot):
        engine.store.set(key, value)
        count += 1
    engine.store.dirty_since_save = 0
    return count


def reload_snapshot(engine: KvEngine, snapshot: rdb.SnapshotFile) -> int:
    """Replace a live engine's dataset with a snapshot image.

    The replica side of a replication full sync: Redis flushes the old
    dataset before loading the master's RDB stream.  The engine's AOF
    (if any) restarts from the compact form of the loaded image, so the
    replica's persistence lineage matches its new dataset.
    """
    for key in list(engine.store.keys()):
        engine.store.delete(key)
    count = load_snapshot(engine, snapshot)
    if engine.aof is not None:
        engine.aof.records = list(
            aof_mod.compact_commands(rdb.load(snapshot))
        )
        engine.aof.rewrite_buffer = []
        engine.aof.rewriting = False
    engine.store.dirty_since_save = 0
    return count


def load_aof(engine: KvEngine, log: AppendOnlyFile) -> int:
    """Replay an AOF into an engine; returns keys in the final state."""
    state = replay(log.records)
    for key, value in state.items():
        engine.store.set(key, value)
    if engine.aof is not None:
        # The reconstructed log: one SET per live key (what a rewrite
        # would produce), so the engine can keep appending to it.
        from repro.kvs.aof import compact_commands

        engine.aof.records = list(compact_commands(state.items()))
    engine.store.dirty_since_save = 0
    return len(state)


def _decode_aof(
    data: bytes, repair: bool, report: RecoveryReport
) -> AppendOnlyFile:
    log, dropped = aof_mod.decode(data, repair=repair)
    if dropped:
        report.aof_bytes_dropped = dropped
        report.note("torn-tail-repaired")
    return log


def _load_generations(
    engine: KvEngine,
    snapshots: Sequence[rdb.SnapshotFile],
    report: RecoveryReport,
) -> int:
    """Try each snapshot generation (newest first) until one verifies."""
    last_error: Optional[CorruptSnapshotError] = None
    for index, candidate in enumerate(snapshots):
        try:
            rdb.verify(candidate)
            count = load_snapshot(engine, candidate)
        except CorruptSnapshotError as exc:
            last_error = exc
            report.generations_skipped += 1
            report.note(f"generation-{index}-corrupt")
            # A partially loaded corrupt generation must not leak keys
            # into the next attempt.
            for key in list(engine.store.keys()):
                engine.store.delete(key)
            continue
        report.snapshot_generation = index
        if report.generations_skipped:
            report.note("generation-fallback")
        return count
    assert last_error is not None
    raise last_error


def recover(
    snapshot: Optional[rdb.SnapshotFile] = None,
    aof: Optional[AppendOnlyFile] = None,
    fork_engine: Optional[ForkEngine] = None,
    config: Optional[EngineConfig] = None,
    snapshots: Optional[Sequence[rdb.SnapshotFile]] = None,
    aof_bytes: Optional[bytes] = None,
    repair: bool = True,
) -> KvEngine:
    """Boot a fresh engine from whatever persistence artifacts survive.

    Prefers the AOF when both exist (Redis's rule: the log is the more
    complete history).  With neither, returns an empty engine.

    ``aof_bytes`` is the serialized on-disk log (possibly torn;
    repaired per ``repair``).  ``snapshots`` is the retained generation
    chain, newest first — corrupt generations are skipped.  The
    decision trail lands on ``engine.last_recovery``.
    """
    report = RecoveryReport()
    if aof_bytes is not None:
        if aof is not None:
            raise ValueError("pass either aof or aof_bytes, not both")
        aof = _decode_aof(aof_bytes, repair, report)
    if snapshots is None:
        snapshots = [snapshot] if snapshot is not None else []
    elif snapshot is not None:
        raise ValueError("pass either snapshot or snapshots, not both")
    if config is None:
        config = EngineConfig(aof_enabled=aof is not None)
    engine = KvEngine(fork_engine=fork_engine, config=config)
    if aof is not None:
        report.source = "aof"
        report.keys_loaded = load_aof(engine, aof)
    elif snapshots:
        report.source = "snapshot"
        report.keys_loaded = _load_generations(engine, snapshots, report)
    engine.last_recovery = report
    return engine


def recover_combined(
    snapshots: Sequence[rdb.SnapshotFile],
    aof_tail: Iterable[aof_mod.AofRecord] = (),
    fork_engine: Optional[ForkEngine] = None,
    config: Optional[EngineConfig] = None,
) -> KvEngine:
    """Boot from a snapshot base plus the incremental AOF tail.

    The snapshot + tail layout: the snapshot captures the dataset at
    fork time and the AOF holds only the commands since.  The base
    falls back across corrupt generations like :func:`recover`; the
    tail is replayed on top.
    """
    report = RecoveryReport(source="snapshot+aof")
    if config is None:
        config = EngineConfig(aof_enabled=True)
    engine = KvEngine(fork_engine=fork_engine, config=config)
    if snapshots:
        report.keys_loaded = _load_generations(engine, snapshots, report)
    tail = list(aof_tail)
    for record in tail:
        if record.op == "SET":
            assert record.value is not None
            engine.store.set(record.key, record.value)
        elif record.op == "DEL":
            engine.store.delete(record.key)
    if tail:
        report.note(f"aof-tail-replayed:{len(tail)}")
    report.keys_loaded = len(engine.store)
    engine.store.dirty_since_save = 0
    engine.last_recovery = report
    return engine
