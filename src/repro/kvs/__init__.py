"""A Redis/KeyDB-like in-memory key-value store on the simulated kernel.

The store keeps its *values* on simulated pages obtained through a
jemalloc-style allocator (:mod:`repro.kvs.allocator`), so every SET dirties
real (simulated) memory — which is exactly what drives the CoW machinery
the paper studies.  Snapshots (:mod:`repro.kvs.snapshot` via ``BGSAVE``)
and append-only-file rewriting (:mod:`repro.kvs.aof` via
``BGREWRITEAOF``) both go through a pluggable fork engine, mirroring how
the deployed system switches between default fork and Async-fork per
memory cgroup.
"""

from repro.kvs import rdb, resp
from repro.kvs.allocator import JemallocArena
from repro.kvs.engine import KvEngine
from repro.kvs.keydb import KeyDbEngine
from repro.kvs.latency_monitor import LatencyMonitor
from repro.kvs.recovery import recover
from repro.kvs.server import CommandServer, SavePoint
from repro.kvs.store import KvStore

__all__ = [
    "CommandServer",
    "JemallocArena",
    "KvEngine",
    "KeyDbEngine",
    "KvStore",
    "LatencyMonitor",
    "SavePoint",
    "rdb",
    "recover",
    "resp",
]
