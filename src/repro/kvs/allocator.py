"""A jemalloc-flavoured allocator over simulated VMAs.

Redis and KeyDB allocate values through jemalloc.  The allocator's
behaviour matters to Async-fork because it determines how often the
process calls ``mmap``/``munmap`` — each of which is a VMA-wide PTE
modification the parent must synchronize (§4.3, and the tuning advice in
Appendix C: pre-allocate arenas and *retain* empty chunks instead of
unmapping them).

The model implements size-class allocation from arena chunks:

* requests are rounded up to a size class (multiples of 64 B up to 4 KiB,
  then page multiples);
* chunks of ``chunk_size`` bytes are mmap'ed on demand;
* freed blocks go to a per-class free list;
* an empty chunk is munmap'ed immediately when ``retain=False`` and kept
  for reuse when ``retain=True`` (jemalloc's ``retain`` option).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.address_space import AddressSpace
from repro.mem.vma import VmaProt
from repro.units import MIB, PAGE_SIZE

#: Granularity of the small size classes.
QUANTUM = 64
#: Requests above this use whole pages.
SMALL_LIMIT = 4096


def size_class(size: int) -> int:
    """Round a request up to its allocation class."""
    if size <= 0:
        raise ValueError("allocation size must be positive")
    if size <= SMALL_LIMIT:
        return (size + QUANTUM - 1) // QUANTUM * QUANTUM
    return (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


@dataclass
class _Chunk:
    """One mmap'ed arena chunk."""

    start: int
    end: int
    cursor: int
    live: int = 0  # live allocations carved from this chunk
    free_lists: dict[int, list[int]] = field(default_factory=dict)

    def remaining(self) -> int:
        """Bytes still available for bump allocation."""
        return self.end - self.cursor


class JemallocArena:
    """Size-class allocator for one address space."""

    def __init__(
        self,
        mm: AddressSpace,
        chunk_size: int = 4 * MIB,
        retain: bool = True,
    ) -> None:
        if chunk_size % PAGE_SIZE:
            raise ValueError("chunk size must be page-aligned")
        self.mm = mm
        self.chunk_size = chunk_size
        #: jemalloc's 'retain': keep empty chunks mapped for reuse.
        self.retain = retain
        self._chunks: list[_Chunk] = []
        self._retained: list[_Chunk] = []
        self._blocks: dict[int, tuple[int, _Chunk]] = {}
        self.stats = {"mmap_calls": 0, "munmap_calls": 0, "reused_chunks": 0}

    # ------------------------------------------------------------------

    def zmalloc(self, size: int) -> int:
        """Allocate a block; returns its virtual address."""
        klass = size_class(size)
        if klass > self.chunk_size:
            raise ValueError(
                f"allocation of {size} exceeds chunk size {self.chunk_size}"
            )
        # First try per-class free lists.
        for chunk in self._chunks:
            free = chunk.free_lists.get(klass)
            if free:
                vaddr = free.pop()
                chunk.live += 1
                self._blocks[vaddr] = (klass, chunk)
                return vaddr
        # Then bump-allocate from a chunk with room.
        for chunk in self._chunks:
            if chunk.remaining() >= klass:
                return self._carve(chunk, klass)
        chunk = self._grow()
        return self._carve(chunk, klass)

    def zfree(self, vaddr: int) -> None:
        """Release a block previously returned by :meth:`zmalloc`."""
        klass, chunk = self._blocks.pop(vaddr)
        chunk.free_lists.setdefault(klass, []).append(vaddr)
        chunk.live -= 1
        if chunk.live == 0:
            self._release(chunk)

    def usable_size(self, vaddr: int) -> int:
        """Size class of a live block (jemalloc's malloc_usable_size)."""
        return self._blocks[vaddr][0]

    def live_blocks(self) -> int:
        """Number of live allocations."""
        return len(self._blocks)

    # ------------------------------------------------------------------

    def _carve(self, chunk: _Chunk, klass: int) -> int:
        vaddr = chunk.cursor
        chunk.cursor += klass
        chunk.live += 1
        self._blocks[vaddr] = (klass, chunk)
        return vaddr

    def _grow(self) -> _Chunk:
        if self._retained:
            chunk = self._retained.pop()
            chunk.cursor = chunk.start
            chunk.free_lists.clear()
            self._chunks.append(chunk)
            self.stats["reused_chunks"] += 1
            return chunk
        vma = self.mm.mmap(
            self.chunk_size,
            VmaProt.READ | VmaProt.WRITE,
            tag="jemalloc-arena",
        )
        # The VMA may have merged with a neighbouring arena chunk; the
        # chunk's own range is the newly requested tail of it.
        start = vma.end - self.chunk_size
        chunk = _Chunk(start=start, end=vma.end, cursor=start)
        self._chunks.append(chunk)
        self.stats["mmap_calls"] += 1
        return chunk

    def _release(self, chunk: _Chunk) -> None:
        self._chunks.remove(chunk)
        chunk.free_lists.clear()
        if self.retain:
            self._retained.append(chunk)
            return
        self.mm.munmap(chunk.start, chunk.end - chunk.start)
        self.stats["munmap_calls"] += 1
