"""The storage engine: a Redis-like server on the simulated kernel.

One engine owns one :class:`~repro.kernel.task.Process` whose heap holds
the values.  ``BGSAVE`` and ``BGREWRITEAOF`` fork that process through a
pluggable fork engine — :class:`~repro.kernel.forks.default.DefaultFork`,
:class:`~repro.kernel.forks.odf.OnDemandFork` or
:class:`~repro.core.async_fork.AsyncFork` — and hand the IO-heavy work to
the child, exactly like the real systems.

Child work is *cooperative*: ``SnapshotJob.step_child()`` advances the
child's page-table copy (Async-fork) by one step so tests can interleave
parent queries at any granularity, and ``SnapshotJob.finish()`` completes
the copy plus serialization in one go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import EngineConfig
from repro.errors import SnapshotInProgressError
from repro.kernel.clock import Clock
from repro.kernel.forks.base import ForkEngine, ForkResult
from repro.kernel.forks.default import DefaultFork
from repro.kernel.forks.odf import OdfSession
from repro.kernel.task import Process
from repro.kvs import aof as aof_mod
from repro.kvs import rdb
from repro.kvs.store import KvStore, ValueRef
from repro.mem.frames import FrameAllocator


@dataclass
class SnapshotReport:
    """Outcome of one completed snapshot."""

    file: rdb.SnapshotFile
    fork_call_ns: int
    child_tables_copied: int = 0
    proactive_syncs: int = 0
    table_faults: int = 0


class SnapshotJob:
    """A BGSAVE in flight."""

    def __init__(
        self,
        engine: "KvEngine",
        result: ForkResult,
        table: dict[bytes, ValueRef],
    ) -> None:
        self.engine = engine
        self.result = result
        self._table = table
        self.done = False
        self.report: Optional[SnapshotReport] = None

    @property
    def child(self) -> Process:
        """The forked child holding the snapshot."""
        return self.result.child

    def step_child(self) -> int:
        """Advance the child's page-table copy one step (Async-fork)."""
        session = self.result.session
        if session is not None and hasattr(session, "child_step"):
            return session.child_step()
        return 0

    def finish(self) -> SnapshotReport:
        """Complete the copy, serialize, and retire the child."""
        if self.done:
            assert self.report is not None
            return self.report
        session = self.result.session
        if session is not None and hasattr(session, "run_to_completion"):
            session.run_to_completion()
            if getattr(session, "failed", False):
                self.abort()
                raise RuntimeError(
                    f"snapshot child failed: {session.failure_reason}"
                )
        entries = (
            (key, self.child.mm.read_memory(ref.vaddr, ref.length))
            for key, ref in self._table.items()
        )
        snapshot = rdb.dump(entries)
        self._retire()
        stats = self.result.stats
        self.report = SnapshotReport(
            file=snapshot,
            fork_call_ns=stats.parent_call_ns,
            child_tables_copied=stats.child_tables_copied,
            proactive_syncs=stats.proactive_syncs,
            table_faults=stats.table_faults,
        )
        self.done = True
        self.engine.store.dirty_since_save = 0
        return self.report

    def abort(self) -> None:
        """Tear the job down after a failure."""
        self._retire()
        self.done = True

    def _retire(self) -> None:
        session = self.result.session
        if isinstance(session, OdfSession):
            session.finish()
        elif session is not None and hasattr(session, "cancel"):
            # Async-fork: close the two-way pointers and clear leftover
            # copied-markers before the child goes away, so a later
            # snapshot never syncs into a dead address space.
            session.cancel()
        if self.child.alive:
            self.child.exit()
        if self.engine._active_job is self:
            self.engine._active_job = None


class RewriteJob:
    """A BGREWRITEAOF in flight (same fork mechanics as BGSAVE)."""

    def __init__(
        self,
        engine: "KvEngine",
        result: ForkResult,
        table: dict[bytes, ValueRef],
    ) -> None:
        self.engine = engine
        self.result = result
        self._table = table
        self.done = False

    @property
    def child(self) -> Process:
        """The forked child performing the rewrite."""
        return self.result.child

    def step_child(self) -> int:
        """Advance the child's page-table copy one step (Async-fork)."""
        session = self.result.session
        if session is not None and hasattr(session, "child_step"):
            return session.child_step()
        return 0

    def finish(self) -> aof_mod.AppendOnlyFile:
        """Build the compact log and splice in the rewrite buffer."""
        if self.done:
            return self.engine.aof
        session = self.result.session
        if session is not None and hasattr(session, "run_to_completion"):
            session.run_to_completion()
            if getattr(session, "failed", False):
                self.abort()
                raise RuntimeError(
                    f"rewrite child failed: {session.failure_reason}"
                )
        entries = (
            (key, self.child.mm.read_memory(ref.vaddr, ref.length))
            for key, ref in self._table.items()
        )
        compact = list(aof_mod.compact_commands(entries))
        self._retire()
        self.done = True
        assert self.engine.aof is not None
        return self.engine.aof.complete_rewrite(compact)

    def abort(self) -> None:
        """Tear the job down after a failure."""
        self._retire()
        if self.engine.aof is not None and self.engine.aof.rewriting:
            self.engine.aof.abort_rewrite()
        self.done = True

    def _retire(self) -> None:
        session = self.result.session
        if isinstance(session, OdfSession):
            session.finish()
        elif session is not None and hasattr(session, "cancel"):
            session.cancel()
        if self.child.alive:
            self.child.exit()
        if self.engine._active_job is self:
            self.engine._active_job = None


class KvEngine:
    """Single-threaded Redis-like engine."""

    def __init__(
        self,
        fork_engine: Optional[ForkEngine] = None,
        config: EngineConfig = EngineConfig(),
        frames: Optional[FrameAllocator] = None,
        name: str = "redis",
    ) -> None:
        self.config = config
        self.frames = frames if frames is not None else FrameAllocator()
        self.process = Process(self.frames, name=name)
        self.store = KvStore(self.process.mm)
        self.fork_engine = (
            fork_engine if fork_engine is not None else DefaultFork()
        )
        self.aof: Optional[aof_mod.AppendOnlyFile] = (
            aof_mod.AppendOnlyFile() if config.aof_enabled else None
        )
        self._active_job: Optional[object] = None
        self.commands_processed = 0

    @property
    def clock(self) -> Clock:
        """The simulated clock (owned by the fork engine)."""
        return self.fork_engine.clock

    # -- commands ----------------------------------------------------------

    def set(self, key, value: bytes) -> None:
        """SET key value."""
        self.store.set(key, value)
        if self.aof is not None:
            normalized = key.encode() if isinstance(key, str) else key
            data = value.encode() if isinstance(value, str) else value
            self.aof.append(aof_mod.AofRecord("SET", normalized, data))
        self.commands_processed += 1

    def get(self, key) -> Optional[bytes]:
        """GET key."""
        self.commands_processed += 1
        return self.store.get(key)

    def delete(self, key) -> bool:
        """DEL key."""
        existed = self.store.delete(key)
        if self.aof is not None and existed:
            normalized = key.encode() if isinstance(key, str) else key
            self.aof.append(aof_mod.AofRecord("DEL", normalized))
        self.commands_processed += 1
        return existed

    def execute(self, command: str, *args):
        """Tiny dispatcher for command-style access."""
        op = command.upper()
        if op == "SET":
            return self.set(args[0], args[1])
        if op == "GET":
            return self.get(args[0])
        if op == "DEL":
            return self.delete(args[0])
        if op == "BGSAVE":
            return self.bgsave()
        if op == "BGREWRITEAOF":
            return self.bgrewriteaof()
        if op == "DBSIZE":
            return len(self.store)
        raise ValueError(f"unknown command {command!r}")

    # -- persistence ----------------------------------------------------------

    def bgsave(self) -> SnapshotJob:
        """Fork a child to take a point-in-time snapshot (BGSAVE)."""
        if self._active_job is not None:
            raise SnapshotInProgressError("a background job is running")
        table = self.store.table_snapshot()
        result = self.fork_engine.fork(self.process)
        job = SnapshotJob(self, result, table)
        self._active_job = job
        return job

    def bgrewriteaof(self) -> RewriteJob:
        """Fork a child to rewrite the AOF (BGREWRITEAOF)."""
        if self.aof is None:
            raise ValueError("AOF is not enabled on this engine")
        if self._active_job is not None:
            raise SnapshotInProgressError("a background job is running")
        self.aof.begin_rewrite()
        table = self.store.table_snapshot()
        result = self.fork_engine.fork(self.process)
        job = RewriteJob(self, result, table)
        self._active_job = job
        return job

    def snapshot_worker(self) -> SnapshotJob:
        """Fork a snapshot child *outside* the single BGSAVE slot.

        This is the HyPer use case of §2.2: OLAP workers each hold a
        fork snapshot while OLTP continues in the parent.  Several
        workers may exist at once; under Async-fork a new fork
        proactively completes the previous child's page-table copy
        (the consecutive-snapshots rule of §5.2), so the workers'
        snapshots stay mutually consistent.
        """
        table = self.store.table_snapshot()
        result = self.fork_engine.fork(self.process)
        return SnapshotJob(self, result, table)

    def save_now(self) -> SnapshotReport:
        """Convenience: BGSAVE and immediately finish the child's work."""
        return self.bgsave().finish()
