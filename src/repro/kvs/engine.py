"""The storage engine: a Redis-like server on the simulated kernel.

One engine owns one :class:`~repro.kernel.task.Process` whose heap holds
the values.  ``BGSAVE`` and ``BGREWRITEAOF`` fork that process through a
pluggable fork engine — :class:`~repro.kernel.forks.default.DefaultFork`,
:class:`~repro.kernel.forks.odf.OnDemandFork` or
:class:`~repro.core.async_fork.AsyncFork` — and hand the IO-heavy work to
the child, exactly like the real systems.

Child work is *cooperative*: ``SnapshotJob.step_child()`` advances the
child's page-table copy (Async-fork) by one step so tests can interleave
parent queries at any granularity, and ``SnapshotJob.finish()`` completes
the copy plus serialization in one go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import EngineConfig
from repro.errors import (
    SnapshotChildError,
    SnapshotInProgressError,
    WritesRefusedError,
)
from repro.faults.plan import FaultPlan
from repro.kernel.clock import Clock
from repro.kernel.forks.base import ForkEngine, ForkResult
from repro.kernel.forks.default import DefaultFork
from repro.kernel.task import Process
from repro.kvs import aof as aof_mod
from repro.kvs import rdb
from repro.kvs.store import KvStore, ValueRef
from repro.mem.frames import FrameAllocator
from repro.obs import tracer as obs
from repro.sim.disk import DiskDevice


@dataclass
class SnapshotReport:
    """Outcome of one completed snapshot."""

    file: rdb.SnapshotFile
    fork_call_ns: int
    child_tables_copied: int = 0
    proactive_syncs: int = 0
    table_faults: int = 0
    #: Simulated duration of the child's disk write.
    persist_ns: int = 0


class ForkJob:
    """A forked background job (BGSAVE or BGREWRITEAOF) in flight.

    Shared mechanics: cooperative child stepping, the session failure
    contract (:class:`~repro.kernel.forks.base.ForkSession` — no more
    ``getattr`` probing), and uniform retirement through
    ``session.cancel()`` so every engine undoes its sharing/marker state
    before the child goes away.
    """

    #: Label used in failure messages ('snapshot' / 'rewrite').
    kind = "fork"

    def __init__(
        self,
        engine: "KvEngine",
        result: ForkResult,
        table: dict[bytes, ValueRef],
    ) -> None:
        self.engine = engine
        self.result = result
        self._table = table
        self.done = False
        #: Why the job was aborted, if it was.
        self.failure_reason: Optional[str] = None

    @property
    def child(self) -> Process:
        """The forked child doing the background work."""
        return self.result.child

    @property
    def failed(self) -> bool:
        """Whether the job's fork session died (§4.4) or it was aborted."""
        session = self.result.session
        if session is not None and session.failed:
            return True
        return self.failure_reason is not None

    def step_child(self) -> int:
        """Advance the child's page-table copy one step (Async-fork)."""
        session = self.result.session
        if session is not None and hasattr(session, "child_step"):
            return session.child_step()
        return 0

    @property
    def child_copy_done(self) -> bool:
        """Whether the child needs no more cooperative parent help.

        The default fork copies everything inside the call and ODF
        copies lazily on faults, so both children can serialize right
        away; only Async-fork has an in-flight copy to wait out.
        """
        session = self.result.session
        if session is None or not hasattr(session, "child_step"):
            return True
        return session.done

    def _drain_child(self) -> None:
        """Run the copy to completion; raise if the session died."""
        session = self.result.session
        if session is not None and hasattr(session, "run_to_completion"):
            session.run_to_completion()
            if session.failed:
                reason = session.failure_reason
                self.abort(reason=reason)
                raise SnapshotChildError(
                    f"{self.kind} child failed: {reason}", reason=reason
                )

    def _child_entries(self):
        from repro.kvs.store import _read_paged

        cache: dict[int, bytes] = {}
        return (
            (key, _read_paged(self.child.mm, ref.vaddr, ref.length, cache))
            for key, ref in self._table.items()
        )

    def abort(self, reason: Optional[str] = None) -> None:
        """Tear the job down after a failure (or a watchdog kill)."""
        if reason is not None and self.failure_reason is None:
            self.failure_reason = reason
        if obs.ACTIVE:
            obs.emit_instant(
                "kvs.job.abort",
                obs.CAT_KVS,
                self.engine.clock.now,
                kind=self.kind,
                reason=reason or self.failure_reason or "?",
            )
        session = self.result.session
        if session is not None and not session.failed and reason is not None:
            session.mark_failed(reason)
        self._retire()
        self.done = True

    def _retire(self) -> None:
        session = self.result.session
        if session is not None:
            # Close two-way pointers / drop sharing and clear leftover
            # copied-markers before the child goes away, so a later
            # snapshot never syncs into a dead address space.
            session.cancel()
        if self.child.alive:
            self.child.exit()
        if self.engine._active_job is self:
            self.engine._active_job = None


class SnapshotJob(ForkJob):
    """A BGSAVE in flight."""

    kind = "snapshot"

    def __init__(
        self,
        engine: "KvEngine",
        result: ForkResult,
        table: dict[bytes, ValueRef],
        dirty_at_fork: int = 0,
    ) -> None:
        super().__init__(engine, result, table)
        self.report: Optional[SnapshotReport] = None
        #: Writes the fork point absorbed from the dirty counter; given
        #: back on a §4.4 rollback/abort so the save point re-fires.
        self._dirty_at_fork = dirty_at_fork

    def abort(self, reason: Optional[str] = None) -> None:
        """Tear the job down; un-absorb the fork point's dirty count."""
        if self._dirty_at_fork and self.report is None:
            self.engine.store.dirty_since_save += self._dirty_at_fork
            self._dirty_at_fork = 0
        super().abort(reason=reason)

    def finish(self) -> SnapshotReport:
        """Complete the copy, serialize, and retire the child."""
        if self.done:
            assert self.report is not None
            return self.report
        self._drain_child()
        snapshot = rdb.dump(self._child_entries())
        try:
            persist_ns = self.engine.disk.write(snapshot.size, what="rdb")
        except Exception:
            self.abort(reason="disk-write")
            raise
        self._retire()
        stats = self.result.stats
        self.report = SnapshotReport(
            file=snapshot,
            fork_call_ns=stats.parent_call_ns,
            child_tables_copied=stats.child_tables_copied,
            proactive_syncs=stats.proactive_syncs,
            table_faults=stats.table_faults,
            persist_ns=persist_ns,
        )
        self.done = True
        if obs.ACTIVE:
            obs.emit_instant(
                "kvs.snapshot.finish",
                obs.CAT_KVS,
                self.engine.clock.now,
                bytes=snapshot.size,
                persist_ns=persist_ns,
                tables_copied=stats.child_tables_copied,
            )
        return self.report


class RewriteJob(ForkJob):
    """A BGREWRITEAOF in flight (same fork mechanics as BGSAVE)."""

    kind = "rewrite"

    def finish(self) -> aof_mod.AppendOnlyFile:
        """Build the compact log and splice in the rewrite buffer."""
        if self.done:
            return self.engine.aof
        self._drain_child()
        compact = list(aof_mod.compact_commands(self._child_entries()))
        try:
            self.engine.disk.write(
                sum(r.encoded_size() for r in compact), what="aof-rewrite"
            )
        except Exception:
            self.abort(reason="disk-write")
            raise
        self._retire()
        self.done = True
        assert self.engine.aof is not None
        return self.engine.aof.complete_rewrite(compact)

    def abort(self, reason: Optional[str] = None) -> None:
        """Tear the job down after a failure."""
        super().abort(reason=reason)
        if self.engine.aof is not None and self.engine.aof.rewriting:
            self.engine.aof.abort_rewrite()


class KvEngine:
    """Single-threaded Redis-like engine."""

    def __init__(
        self,
        fork_engine: Optional[ForkEngine] = None,
        config: EngineConfig = EngineConfig(),
        frames: Optional[FrameAllocator] = None,
        name: str = "redis",
    ) -> None:
        self.config = config
        self.frames = frames if frames is not None else FrameAllocator()
        self.process = Process(self.frames, name=name)
        self.store = KvStore(self.process.mm)
        self.fork_engine = (
            fork_engine if fork_engine is not None else DefaultFork()
        )
        self.aof: Optional[aof_mod.AppendOnlyFile] = (
            aof_mod.AppendOnlyFile() if config.aof_enabled else None
        )
        #: The disk the background children persist through.
        self.disk = DiskDevice()
        self._active_job: Optional[ForkJob] = None
        self.commands_processed = 0
        #: MISCONF-style state: persistent save failures disable writes
        #: (toggled by the supervision layer, not by the engine itself).
        self.writes_refused = False
        #: Write commands rejected while in that state.
        self.refused_write_count = 0
        #: Set by :mod:`repro.kvs.recovery` when this engine was booted
        #: from persistence artifacts.
        self.last_recovery = None
        #: Optional hook ``fn(op, key, value_or_None)`` fired after every
        #: accepted write — the replication master propagates through it
        #: so server-path and direct writes replicate alike.
        self.on_write: Optional[Callable] = None
        #: Optional gate invoked before every write; raising (e.g.
        #: :class:`~repro.errors.NoReplicasError`) refuses the command.
        #: The replication layer installs its min-replicas check here.
        self.write_gate: Optional[Callable] = None
        #: Key -> absolute expiry deadline on the simulated clock.
        #: Eviction is lazy (checked on access, like Redis's read path);
        #: an evicted key routes through the AOF/``on_write`` machinery
        #: as a DEL so persistence and replication observe it.
        self._expires: dict[bytes, int] = {}

    @property
    def clock(self) -> Clock:
        """The simulated clock (owned by the fork engine)."""
        return self.fork_engine.clock

    def metrics_snapshot(self) -> dict:
        """One dict of every layer's metrics, under dotted names.

        Aggregates the per-object :class:`~repro.obs.registry.
        MetricsRegistry` instances (``mm.*``, ``tlb.*``, ``frames.*``)
        plus the engine/disk counters that predate the registry, sorted
        by name (see DESIGN.md for the naming scheme).
        """
        snap: dict = {}
        snap.update(self.process.mm.metrics.snapshot())
        snap.update(self.process.mm.tlb.metrics.snapshot())
        snap.update(self.frames.metrics.snapshot())
        snap["disk.bytes_written"] = self.disk.bytes_written
        snap["disk.writes"] = self.disk.writes
        snap["engine.commands"] = self.commands_processed
        snap["engine.refused_writes"] = self.refused_write_count
        return dict(sorted(snap.items()))

    def attach_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Wire one chaos plan through every injectable layer at once:
        frame allocation, the fork engine's child copier, the disk, and
        the AOF fsync path."""
        self.frames.attach_fault_plan(plan)
        if hasattr(self.fork_engine, "attach_fault_plan"):
            self.fork_engine.attach_fault_plan(plan)
        self.disk.fault_plan = plan
        if self.aof is not None:
            self.aof.fault_plan = plan

    # -- commands ----------------------------------------------------------

    def _check_writes_allowed(self) -> None:
        if self.writes_refused:
            self.refused_write_count += 1
            raise WritesRefusedError(
                "MISCONF: background saving is failing; "
                "writes are disabled until a save succeeds"
            )
        if self.write_gate is not None:
            self.write_gate()

    @staticmethod
    def _normalize_key(key) -> bytes:
        return key.encode() if isinstance(key, str) else bytes(key)

    def _evict_if_expired(self, key: bytes) -> bool:
        """Lazily evict one key whose deadline has passed.

        Runs *before* the writes-allowed gate: expiry is server-internal
        housekeeping, not a client write, but it still flows through the
        AOF and ``on_write`` as a DEL so persistence/replication agree.
        """
        if not self._expires:
            return False
        deadline = self._expires.get(key)
        if deadline is None or self.clock.now < deadline:
            return False
        del self._expires[key]
        if self.store.delete(key):
            if self.aof is not None:
                self.aof.append(aof_mod.AofRecord("DEL", key))
            if self.on_write is not None:
                self.on_write("DEL", key, None)
        return True

    def set(self, key, value: bytes) -> None:
        """SET key value (clears any TTL, like Redis's plain SET)."""
        self._check_writes_allowed()
        normalized = self._normalize_key(key)
        data = value.encode() if isinstance(value, str) else value
        self.store.set(normalized, data)
        self._expires.pop(normalized, None)
        if self.aof is not None:
            self.aof.append(aof_mod.AofRecord("SET", normalized, data))
        self.commands_processed += 1
        if self.on_write is not None:
            self.on_write("SET", normalized, data)

    def get(self, key) -> Optional[bytes]:
        """GET key."""
        self.commands_processed += 1
        normalized = self._normalize_key(key)
        if self._evict_if_expired(normalized):
            return None
        return self.store.get(normalized)

    def exists(self, key) -> bool:
        """EXISTS key (expiry-aware)."""
        normalized = self._normalize_key(key)
        if self._evict_if_expired(normalized):
            return False
        return normalized in self.store

    def delete(self, key) -> bool:
        """DEL key."""
        self._check_writes_allowed()
        normalized = self._normalize_key(key)
        if self._evict_if_expired(normalized):
            return False
        self._expires.pop(normalized, None)
        existed = self.store.delete(normalized)
        if self.aof is not None and existed:
            self.aof.append(aof_mod.AofRecord("DEL", normalized))
        self.commands_processed += 1
        if existed and self.on_write is not None:
            self.on_write("DEL", normalized, None)
        return existed

    # -- expiry ----------------------------------------------------------

    def expire_at(self, key, deadline_ns: int) -> bool:
        """Arm a TTL as an absolute simulated-clock deadline.

        Returns ``False`` when the key does not exist (the EXPIRE
        contract).  A deadline at or before *now* deletes immediately,
        matching Redis's ``EXPIRE key 0``.
        """
        self._check_writes_allowed()
        normalized = self._normalize_key(key)
        if self._evict_if_expired(normalized):
            return False
        if normalized not in self.store:
            return False
        self._expires[normalized] = deadline_ns
        if deadline_ns <= self.clock.now:
            self._evict_if_expired(normalized)
        return True

    def ttl_ns(self, key) -> int:
        """Remaining TTL in ns; ``-1`` — no TTL, ``-2`` — no such key."""
        normalized = self._normalize_key(key)
        if self._evict_if_expired(normalized):
            return -2
        if normalized not in self.store:
            return -2
        deadline = self._expires.get(normalized)
        if deadline is None:
            return -1
        return deadline - self.clock.now

    def persist(self, key) -> bool:
        """Drop a key's TTL; returns whether a TTL was removed."""
        normalized = self._normalize_key(key)
        if self._evict_if_expired(normalized):
            return False
        return self._expires.pop(normalized, None) is not None

    def execute(self, command: str, *args):
        """Tiny dispatcher for command-style access."""
        op = command.upper()
        if op == "SET":
            return self.set(args[0], args[1])
        if op == "GET":
            return self.get(args[0])
        if op == "DEL":
            return self.delete(args[0])
        if op == "BGSAVE":
            return self.bgsave()
        if op == "BGREWRITEAOF":
            return self.bgrewriteaof()
        if op == "DBSIZE":
            return len(self.store)
        raise ValueError(f"unknown command {command!r}")

    # -- persistence ----------------------------------------------------------

    def bgsave(self) -> SnapshotJob:
        """Fork a child to take a point-in-time snapshot (BGSAVE)."""
        if self._active_job is not None:
            raise SnapshotInProgressError("a background job is running")
        if obs.ACTIVE:
            obs.emit_instant(
                "kvs.bgsave",
                obs.CAT_KVS,
                self.clock.now,
                engine=self.fork_engine.name,
                keys=len(self.store),
            )
        table = self.store.table_snapshot()
        result = self.fork_engine.fork(self.process)
        job = SnapshotJob(
            self, result, table, dirty_at_fork=self.store.dirty_since_save
        )
        # Redis resets server.dirty when the BGSAVE *starts*: writes
        # landing during the snapshot window count toward the *next*
        # save point, not the one this fork just satisfied.
        self.store.dirty_since_save = 0
        self._active_job = job
        return job

    def bgrewriteaof(self) -> RewriteJob:
        """Fork a child to rewrite the AOF (BGREWRITEAOF)."""
        if self.aof is None:
            raise ValueError("AOF is not enabled on this engine")
        if self._active_job is not None:
            raise SnapshotInProgressError("a background job is running")
        if obs.ACTIVE:
            obs.emit_instant(
                "kvs.bgrewriteaof",
                obs.CAT_KVS,
                self.clock.now,
                engine=self.fork_engine.name,
            )
        self.aof.begin_rewrite()
        table = self.store.table_snapshot()
        result = self.fork_engine.fork(self.process)
        job = RewriteJob(self, result, table)
        self._active_job = job
        return job

    def snapshot_worker(self) -> SnapshotJob:
        """Fork a snapshot child *outside* the single BGSAVE slot.

        This is the HyPer use case of §2.2: OLAP workers each hold a
        fork snapshot while OLTP continues in the parent.  Several
        workers may exist at once; under Async-fork a new fork
        proactively completes the previous child's page-table copy
        (the consecutive-snapshots rule of §5.2), so the workers'
        snapshots stay mutually consistent.
        """
        table = self.store.table_snapshot()
        result = self.fork_engine.fork(self.process)
        return SnapshotJob(self, result, table)

    def save_now(self) -> SnapshotReport:
        """Convenience: BGSAVE and immediately finish the child's work."""
        return self.bgsave().finish()
