"""Redis's latency monitoring framework, for the simulated engine.

The paper repeatedly leans on Redis's latency tooling ([43], [44], [26]):
operators watch per-event latency spikes (``LATENCY HISTORY fork``, the
``latency-monitor-threshold`` config) and the fork spike is the classic
entry.  This module reproduces that surface so the examples and the
command server can show the spike exactly where a Redis operator would
look for it.

Events mirror Redis's: ``fork`` (the BGSAVE/BGREWRITEAOF fork call),
``command`` (slow command executions), ``aof-write`` and so on; any
string is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import MSEC


@dataclass(frozen=True)
class LatencyEvent:
    """One spike sample, as LATENCY HISTORY returns them."""

    at_ns: int
    duration_ms: float


@dataclass
class LatencyMonitor:
    """Per-event spike tracking above a configurable threshold."""

    #: Redis default: events slower than this many ms get recorded
    #: (latency-monitor-threshold; 0 disables).
    threshold_ms: float = 1.0
    max_samples_per_event: int = 160  # Redis's LATENCY_TS_LEN
    _history: dict[str, list[LatencyEvent]] = field(default_factory=dict)

    def record(self, event: str, duration_ns: int, at_ns: int = 0) -> bool:
        """Record a sample if it crosses the threshold; returns whether."""
        if self.threshold_ms <= 0:
            return False
        duration_ms = duration_ns / MSEC
        if duration_ms < self.threshold_ms:
            return False
        samples = self._history.setdefault(event, [])
        samples.append(LatencyEvent(at_ns=at_ns, duration_ms=duration_ms))
        if len(samples) > self.max_samples_per_event:
            del samples[0 : len(samples) - self.max_samples_per_event]
        return True

    # -- the LATENCY command family --------------------------------------

    def history(self, event: str) -> list[LatencyEvent]:
        """LATENCY HISTORY <event>."""
        return list(self._history.get(event, []))

    def latest(self) -> dict[str, LatencyEvent]:
        """LATENCY LATEST: the most recent sample per event."""
        return {
            event: samples[-1]
            for event, samples in self._history.items()
            if samples
        }

    def reset(self, *events: str) -> int:
        """LATENCY RESET [event ...]; returns series cleared."""
        if not events:
            cleared = len(self._history)
            self._history.clear()
            return cleared
        cleared = 0
        for event in events:
            if self._history.pop(event, None) is not None:
                cleared += 1
        return cleared

    def worst(self, event: str) -> float:
        """Worst spike for an event in ms (0 when none)."""
        samples = self._history.get(event)
        if not samples:
            return 0.0
        return max(s.duration_ms for s in samples)

    def doctor(self) -> str:
        """LATENCY DOCTOR: a one-paragraph diagnosis.

        Follows the real tool's spirit: if fork spikes dominate, point at
        the snapshot mechanism (and, here, at Async-fork as the cure).
        """
        if not self._history:
            return (
                "Dave, I have observed the system, no worthy latency "
                "event registered so far, keep it up!"
            )
        lines = []
        for event, samples in sorted(self._history.items()):
            worst = max(s.duration_ms for s in samples)
            lines.append(
                f"- {event}: {len(samples)} spike(s), worst {worst:.2f} ms"
            )
        diagnosis = "\n".join(lines)
        if self.worst("fork") >= max(
            (self.worst(e) for e in self._history), default=0.0
        ):
            diagnosis += (
                "\nThe fork event dominates: the engine stalls inside "
                "fork() while copying the page table. Consider Async-fork "
                "(this reproduction's repro.core) — or a smaller instance."
            )
        return diagnosis
