"""Discrete-event timing tier.

The functional tier (:mod:`repro.mem`, :mod:`repro.core`) proves the
algorithms correct; this package measures what they *cost* at paper scale
(1-64 GiB instances, millions of queries).  The same three fork algorithms
run here over a compact per-PMD representation — one state slot per
512-entry PTE table, which is exactly the granularity Async-fork and ODF
operate at — driven by the calibrated
:class:`~repro.kernel.costs.CostModel` and an open-loop single/multi-server
queueing loop.
"""

from repro.sim.compact import CompactInstance
from repro.sim.disk import DiskModel
from repro.sim.interrupts import InterruptRecorder
from repro.sim.snapshot_sim import (
    SnapshotSimConfig,
    SnapshotSimResult,
    simulate_snapshot,
)

__all__ = [
    "CompactInstance",
    "DiskModel",
    "InterruptRecorder",
    "SnapshotSimConfig",
    "SnapshotSimResult",
    "simulate_snapshot",
]
