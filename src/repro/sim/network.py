"""Production-cloud environment model (Figure 16).

The production evaluation runs the IMKVS inside a rented cloud instance
with clients on a separate VM over a 3 Gb/s network.  Compared with the
local testbed this adds a network round trip to every measured latency and
inflates service time (virtualized CPU, smaller instance), which is why
the production numbers in Figure 16 sit an order of magnitude above the
local ones (e.g. default-fork p99 of 33 ms on an 8 GB instance vs ~0.4 ms
locally).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import us


@dataclass(frozen=True)
class ProductionEnvironment:
    """Latency/service modifiers of the cloud deployment."""

    #: Client<->server round trip (within-region cloud network).
    rtt_ns: int = us(200)
    #: Virtualized-CPU service-time inflation.
    service_inflation: float = 1.3
    #: Additional jitter from noisy neighbours (lognormal sigma add-on).
    extra_jitter_sigma: float = 0.15

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return (
            f"cloud(rtt={self.rtt_ns / 1000:.0f}us, "
            f"cpu x{self.service_inflation:.1f})"
        )


LOCAL_ENVIRONMENT = None  # the default: no network, bare-metal service
PRODUCTION_ENVIRONMENT = ProductionEnvironment()
