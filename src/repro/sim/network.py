"""Production-cloud environment model (Figure 16).

The production evaluation runs the IMKVS inside a rented cloud instance
with clients on a separate VM over a 3 Gb/s network.  Compared with the
local testbed this adds a network round trip to every measured latency and
inflates service time (virtualized CPU, smaller instance), which is why
the production numbers in Figure 16 sit an order of magnitude above the
local ones (e.g. default-fork p99 of 33 ms on an 8 GB instance vs ~0.4 ms
locally).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkPartitionError
from repro.faults.plan import SITE_NET_SEND, FaultPlan
from repro.obs import tracer as obs
from repro.units import us


@dataclass(frozen=True)
class ProductionEnvironment:
    """Latency/service modifiers of the cloud deployment."""

    #: Client<->server round trip (within-region cloud network).
    rtt_ns: int = us(200)
    #: Virtualized-CPU service-time inflation.
    service_inflation: float = 1.3
    #: Additional jitter from noisy neighbours (lognormal sigma add-on).
    extra_jitter_sigma: float = 0.15

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return (
            f"cloud(rtt={self.rtt_ns / 1000:.0f}us, "
            f"cpu x{self.service_inflation:.1f})"
        )


@dataclass
class NetworkLink:
    """The client<->server link, with injectable partitions and spikes.

    Chaos clients send through this object; the fault plan's
    ``sim.network.send`` site can partition the link for one send
    (:class:`~repro.errors.NetworkPartitionError`) or add an RTT spike
    of the spec's magnitude — the noisy-neighbour tail of the Figure 16
    cloud deployment.
    """

    environment: ProductionEnvironment = field(
        default_factory=ProductionEnvironment
    )
    fault_plan: Optional[FaultPlan] = None
    #: Successful round trips.
    sends: int = 0
    #: Extra nanoseconds accumulated from injected RTT spikes.
    spike_ns_total: int = 0

    def round_trip_ns(self, payload: int = 0) -> int:
        """One client round trip; returns its RTT in nanoseconds.

        Raises :class:`~repro.errors.NetworkPartitionError` when a
        ``partition`` fault fires for this send.
        """
        rtt = self.environment.rtt_ns
        if self.fault_plan is not None:
            spec = self.fault_plan.fire(SITE_NET_SEND, payload=payload)
            if spec is not None:
                if spec.kind == "partition":
                    raise NetworkPartitionError(
                        "injected network partition on the client link"
                    )
                rtt += spec.magnitude  # 'rtt-spike'
                self.spike_ns_total += spec.magnitude
        self.sends += 1
        if obs.ACTIVE:
            obs.emit_instant(
                "net.rtt", obs.CAT_IO, rtt_ns=rtt, payload=payload
            )
        return rtt


LOCAL_ENVIRONMENT = None  # the default: no network, bare-metal service
PRODUCTION_ENVIRONMENT = ProductionEnvironment()
