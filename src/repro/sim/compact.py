"""Compact page-table geometry for GB-scale instances.

An instance of ``size_gb`` gibibytes of resident values occupies
``size_gb * 2^18`` pages, i.e. ``size_gb * 512`` PTE leaf tables — the §3.1
anatomy (8 GiB: 1 PGD entry, 8 PUDs, 2^12 PMDs, 2^21 PTEs) falls out of
this directly and is asserted in the calibration tests.

The timing tier never materializes the radix tree; it keeps one state slot
per leaf table (copied / shared / synced) because that is the granularity
at which both ODF and Async-fork operate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import (
    ENTRIES_PER_TABLE,
    GIB,
    PAGE_SIZE,
    PAGES_PER_GIB,
    PMD_TABLE_SPAN,
    PUD_TABLE_SPAN,
)


@dataclass(frozen=True)
class CompactInstance:
    """Geometry of one resident dataset."""

    size_gb: float
    value_size: int = 1024

    @property
    def size_bytes(self) -> int:
        """Resident bytes."""
        return int(self.size_gb * GIB)

    @property
    def n_pages(self) -> int:
        """Resident 4 KiB pages."""
        return max(1, int(self.size_gb * PAGES_PER_GIB))

    @property
    def n_tables(self) -> int:
        """PTE leaf tables (= present PMD entries)."""
        return max(1, self.n_pages // ENTRIES_PER_TABLE)

    @property
    def n_keys(self) -> int:
        """Resident keys at ``value_size`` bytes per value."""
        return max(1, self.size_bytes // self.value_size)

    @property
    def values_per_page(self) -> int:
        """Values packed per page."""
        return max(1, PAGE_SIZE // self.value_size)

    def level_counts(self) -> dict[str, int]:
        """Present entries per page-table level (the Fig. 3 cost input)."""
        span = self.size_bytes
        return {
            "pgd": max(1, -(-span // PUD_TABLE_SPAN)),
            "pud": max(1, -(-span // PMD_TABLE_SPAN)),
            "pmd": self.n_tables,
            "pte": self.n_pages,
        }

    # -- key -> memory mapping ------------------------------------------------

    def pages_of_keys(self, resident_key: np.ndarray) -> np.ndarray:
        """Map resident key indices to page indices (-1 stays -1)."""
        pages = resident_key // self.values_per_page
        return np.where(resident_key >= 0, pages, np.int64(-1))

    def tables_of_pages(self, pages: np.ndarray) -> np.ndarray:
        """Map page indices to leaf-table indices (-1 stays -1)."""
        tables = pages >> 9
        return np.where(pages >= 0, tables, np.int64(-1))
