"""Recording the parent's kernel-mode episodes.

The paper measures "interruptions" — invocations of ``copy_pmd_range()``
in the parent — with the bcc ``funclatency`` tool, whose output is a
power-of-two histogram; all observed invocations land in the [16,31] µs
and [32,63] µs buckets (§6.2, Figure 11).  The recorder below reproduces
that histogram plus the total out-of-service time of Figure 20 (which also
counts the fork call itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import ABORTED_SUFFIX, CAT_KERNEL
from repro.units import USEC


def bcc_bucket(duration_ns: int) -> tuple[int, int]:
    """Power-of-two microsecond bucket, bcc-style: (lo_us, hi_us)."""
    us_val = max(1, duration_ns // USEC)
    lo = 1
    while lo * 2 <= us_val:
        lo *= 2
    return (lo, lo * 2 - 1)


@dataclass
class InterruptRecorder:
    """Kernel-mode episodes of the serving process."""

    reasons: list[str] = field(default_factory=list)
    durations_ns: list[int] = field(default_factory=list)

    def record(self, reason: str, duration_ns: int) -> None:
        """Log one episode."""
        self.reasons.append(reason)
        self.durations_ns.append(int(duration_ns))

    def record_section(self, reason: str, start_ns: int, end_ns: int) -> None:
        """Kernel-section observer signature (``Clock`` compatible)."""
        self.record(reason, end_ns - start_ns)

    def observe(self, clock) -> "InterruptRecorder":
        """Subscribe to a clock's kernel sections; returns ``self``."""
        clock.observe_kernel_sections(self.record_section)
        return self

    @classmethod
    def from_trace(cls, tracer) -> "InterruptRecorder":
        """Derive the recorder from a trace's kernel-category spans.

        The Figure 11 histogram is now a query over the span trace
        (:mod:`repro.obs`); insertion order is preserved so the derived
        recorder matches one fed by a live observer episode-for-episode.
        """
        recorder = cls()
        kernel = [r for r in tracer.records if r.cat == CAT_KERNEL]
        recorder.reasons = [r.name for r in kernel]
        recorder.durations_ns = [int(r.end_ns - r.start_ns) for r in kernel]
        return recorder

    def count(self, reason_prefix: str = "") -> int:
        """Episodes whose reason starts with ``reason_prefix``."""
        if not reason_prefix:
            return len(self.reasons)
        return sum(1 for r in self.reasons if r.startswith(reason_prefix))

    def total_ns(self, reason_prefix: str = "") -> int:
        """Total out-of-service time (Figure 20)."""
        if not reason_prefix:
            return sum(self.durations_ns)
        return sum(
            d
            for r, d in zip(self.reasons, self.durations_ns)
            if r.startswith(reason_prefix)
        )

    def bcc_histogram(
        self, exclude_fork_call: bool = True
    ) -> dict[tuple[int, int], int]:
        """Figure 11's histogram: bucket (lo_us, hi_us) -> count.

        ``exclude_fork_call`` drops the one-off fork invocation so the
        histogram counts only the recurrent interruptions (table CoW /
        proactive synchronization), matching how the paper instruments
        ``copy_pmd_range``'s recurrent callers.  Aborted episodes
        (reason ending in ``!aborted`` — a §4.4 rollback mid-section)
        never completed an interruption and are always excluded.
        """
        if not self.reasons:
            return {}
        keep = np.fromiter(
            (
                not (exclude_fork_call and r.startswith("fork"))
                and not r.endswith(ABORTED_SUFFIX)
                for r in self.reasons
            ),
            dtype=bool,
            count=len(self.reasons),
        )
        durations = np.asarray(self.durations_ns, dtype=np.int64)[keep]
        if not len(durations):
            return {}
        us_val = np.maximum(durations // USEC, 1)
        # frexp is exact for integers below 2**53, so the largest power
        # of two <= us_val is exactly 2**(exponent - 1).
        _, exponent = np.frexp(us_val.astype(np.float64))
        lows, counts = np.unique(
            np.left_shift(np.int64(1), exponent.astype(np.int64) - 1),
            return_counts=True,
        )
        return {
            (int(lo), int(lo) * 2 - 1): int(c)
            for lo, c in zip(lows, counts)
        }

    def bucket_count(self, lo_us: int, hi_us: int) -> int:
        """Count of one specific bucket."""
        return self.bcc_histogram().get((lo_us, hi_us), 0)
