"""The end-to-end snapshot experiment: fork + child copy + persist + queries.

One call to :func:`simulate_snapshot` reproduces the protocol of §6.1/§6.2:

1. an open-loop query stream (a :class:`~repro.workload.Workload`) drives
   a single- or multi-threaded server whose base service time is jittered
   lognormally;
2. at a configurable point, BGSAVE forks the engine through one of the
   three methods; the fork call blocks the server for its calibrated
   duration (hundreds of ms for the default fork at 64 GiB, ~1 ms for ODF,
   ~0.6 ms for Async-fork);
3. afterwards, state at PTE-table granularity determines per-query extra
   kernel time: ODF pays a table-CoW fault on the first write under each
   still-shared table for as long as the child lives; Async-fork pays a
   proactive synchronization only while the child copy (shortened by its
   kernel threads) is in flight; every method pays data-page CoW once per
   dirtied page and a small IO penalty while the child streams the RDB;
4. latencies are classified into snapshot/normal queries on arrival time.

Mechanism notes (see DESIGN.md for the calibration):

* *Fault pressure scales with size*: the fault-dense phase right after the
  fork lasts until most leaf tables are unshared (ODF) or copied
  (Async-fork); its length grows with the table count, i.e. the instance
  size, which produces the superlinear latency growth of Figures 9/10.
* *Hiccups*: rare multi-ms stalls (page-cache flushes, scheduler noise)
  affect every method equally and set the realistic noise floor for the
  maximum-latency plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.determinism import seeded_rng
from repro.kernel.costs import DEFAULT_COSTS, CostModel
from repro.metrics.latency import LatencySample
from repro.metrics.throughput import ThroughputSeries, windowed_throughput
from repro.obs import tracer as obs
from repro.obs.phases import child_copy_segments, trace_fork_phases
from repro.obs.tracer import Tracer
from repro.sim.compact import CompactInstance
from repro.sim.disk import DiskModel
from repro.sim.interrupts import InterruptRecorder
from repro.sim.network import ProductionEnvironment
from repro.units import MSEC, SEC, us
from repro.workload.generators import Workload

METHODS = ("default", "odf", "async", "none")


@dataclass
class SnapshotSimConfig:
    """Parameters of one simulated run."""

    size_gb: float
    method: str
    workload: Workload
    copy_threads: int = 8
    engine_threads: int = 1
    costs: CostModel = DEFAULT_COSTS
    disk: DiskModel = field(default_factory=DiskModel)
    #: When (as a fraction of the stream) BGSAVE is issued.
    bgsave_at_fraction: float = 0.25
    #: Base query service time (parse + execute + reply), before jitter.
    base_service_ns: int = 10_000
    service_sigma: float = 0.15
    fault_sigma: float = 0.15
    #: AOF persistence enabled (inflates service; fsync stalls).
    aof: bool = False
    #: The background job is a BGREWRITEAOF instead of BGSAVE (Fig. 21).
    rewrite: bool = False
    environment: Optional[ProductionEnvironment] = None
    #: Rare system hiccups (page-cache flush, scheduler) — method-neutral.
    hiccups: bool = True
    #: Socket back-pressure: bound on pipelined in-flight requests per
    #: client (0 = unbounded, true open-loop measurement from intended
    #: send times — the paper's enhanced-benchmark methodology).  When
    #: positive, the latency timer starts at the *actual* send instead.
    inflight_per_client: int = 0
    #: jemalloc decay purging: every ~purge_interval the allocator
    #: madvise()s a batch of dirty ranges back to the kernel.  A purge is
    #: a VMA-wide PTE modification (Table 3), so under ODF it unshares —
    #: and under Async-fork during the copy window proactively
    #: synchronizes — every still-pending leaf table it covers, in one
    #: long parent interruption.  This is the main source of ODF's
    #: size-scaling worst-case latency after the initial fault-dense
    #: phase.
    allocator_purge: bool = True
    purge_interval_ns: int = SEC
    #: Fraction of the instance's leaf tables one purge batch spans.
    purge_fraction: float = 1.0 / 32.0
    #: Ablation (§4.2): synchronize whole 512-entry tables (the paper's
    #: choice) or individual PTEs ('pte': cheaper each, far more often).
    sync_granularity: str = "table"
    #: Ablation (§4.2): extra handshake cost when the parent *notifies*
    #: the child and waits instead of copying the entries itself.
    sync_handshake_ns: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}")
        if self.sync_granularity not in ("table", "pte"):
            raise ValueError("sync_granularity must be 'table' or 'pte'")
        if not 0.0 < self.bgsave_at_fraction < 1.0:
            if self.method != "none":
                raise ValueError("bgsave_at_fraction must be in (0, 1)")
        if self.rewrite and not self.aof:
            raise ValueError("BGREWRITEAOF requires AOF to be enabled")


@dataclass
class SnapshotSimResult:
    """Everything a figure needs from one run."""

    config: SnapshotSimConfig
    instance: CompactInstance
    sample: LatencySample
    completions_ns: np.ndarray
    snapshot_start_ns: float
    snapshot_end_ns: float
    fork_call_ns: int
    child_copy_ns: int
    interrupts: InterruptRecorder
    counts: dict = field(default_factory=dict)
    #: Per-run span trace; ``interrupts`` is derived from its
    #: kernel-category spans, and the phase/io spans feed the
    #: ``repro-trace`` breakdown and Chrome-trace export.
    trace: Optional[Tracer] = None

    # -- classification ------------------------------------------------------

    def snapshot_queries(self) -> LatencySample:
        """Queries arriving during the snapshot period."""
        return self.sample.window(self.snapshot_start_ns, self.snapshot_end_ns)

    def normal_queries(self) -> LatencySample:
        """Queries arriving outside the snapshot period."""
        return self.sample.outside(self.snapshot_start_ns, self.snapshot_end_ns)

    def throughput(self, window_ns: int = 50 * MSEC) -> ThroughputSeries:
        """Windowed server-side throughput (Figures 17/18)."""
        return windowed_throughput(self.completions_ns, window_ns)

    def min_snapshot_qps(self, window_ns: int = 50 * MSEC) -> float:
        """Minimum windowed throughput during the snapshot (Figure 19)."""
        series = self.throughput(window_ns)
        return series.min_qps(self.snapshot_start_ns, self.snapshot_end_ns)

    def out_of_service_ns(self) -> int:
        """Total parent kernel-mode time (Figure 20)."""
        return self.interrupts.total_ns()


def simulate_snapshot(config: SnapshotSimConfig) -> SnapshotSimResult:
    """Run one experiment; see the module docstring for the protocol."""
    workload = config.workload
    instance = CompactInstance(
        config.size_gb, workload.meta.get("value_size", 1024)
    )
    costs = config.costs
    n = len(workload)
    rng = seeded_rng(config.seed)

    arrivals = workload.arrivals_ns
    is_set = workload.is_set
    pages = instance.pages_of_keys(workload.resident_key)
    tables = instance.tables_of_pages(pages)

    # Per-query base service time.
    base = config.base_service_ns
    if config.environment is not None:
        base = int(base * config.environment.service_inflation)
    sigma = config.service_sigma
    if config.environment is not None:
        sigma += config.environment.extra_jitter_sigma
    service = (base * rng.lognormal(0.0, sigma, n)).astype(np.int64)
    if config.aof:
        # Appending + amortized fsync work on every write.
        service = service + np.where(is_set, us(3), 0).astype(np.int64)

    # Pre-drawn fault durations (table CoW / proactive sync).
    fault_base = costs.table_fault_ns()
    fault_pool = (
        fault_base * rng.lognormal(0.0, config.fault_sigma, 65536)
    ).astype(np.int64)
    data_cow_ns = costs.data_cow_fault_ns()

    # System stalls: hiccups (all configs) + AOF fsync stalls.
    stall_times, stall_durs = _stall_schedule(config, arrivals, rng)
    purge_times, purge_starts = _purge_schedule(
        config, instance, arrivals, rng
    )

    # Fork-call cost per method.
    counts = instance.level_counts()
    if config.method == "default":
        fork_ns = costs.default_fork_ns(counts)
    elif config.method == "odf":
        fork_ns = costs.odf_fork_ns(counts)
    elif config.method == "async":
        fork_ns = costs.async_fork_ns(counts)
    else:
        fork_ns = 0
    child_copy_ns = (
        costs.child_copy_ns(counts, config.copy_threads)
        if config.method == "async"
        else 0
    )
    persist_ns = config.disk.persist_ns(instance.size_bytes)
    if config.rewrite:
        # The compact AOF the child writes is roughly the dataset plus
        # command framing.
        persist_ns = int(persist_ns * 1.15)

    fork_idx = (
        int(n * config.bgsave_at_fraction) if config.method != "none" else -1
    )

    runner = _Runner(
        config=config,
        instance=instance,
        arrivals=arrivals,
        is_set=is_set,
        pages=pages,
        tables=tables,
        service=service,
        fault_pool=fault_pool,
        data_cow_ns=data_cow_ns,
        stall_times=stall_times,
        stall_durs=stall_durs,
        purge_times=purge_times,
        purge_starts=purge_starts,
        fork_idx=fork_idx,
        fork_ns=fork_ns,
        child_copy_ns=child_copy_ns,
        persist_ns=persist_ns,
        counts=counts,
    )
    latencies, completions = runner.run()

    if obs.ACTIVE:
        obs.emit_instant(
            "sim.run",
            obs.CAT_SIM,
            0,
            method=config.method,
            size_gb=config.size_gb,
            seed=config.seed,
        )
        for collector in obs.ACTIVE:
            collector.extend(runner.trace.records)

    if config.environment is not None:
        latencies = latencies + config.environment.rtt_ns

    sample = LatencySample(latencies, arrivals.copy())
    return SnapshotSimResult(
        config=config,
        instance=instance,
        sample=sample,
        completions_ns=completions,
        snapshot_start_ns=runner.snapshot_start,
        snapshot_end_ns=runner.snapshot_end,
        fork_call_ns=fork_ns,
        child_copy_ns=child_copy_ns,
        interrupts=runner.interrupts,
        trace=runner.trace,
        counts={
            "proactive_syncs": runner.n_syncs,
            "table_faults": runner.n_table_faults,
            "data_cow": runner.n_data_cow,
            "level_counts": counts,
            "persist_ns": persist_ns,
        },
    )


def _purge_schedule(
    config: SnapshotSimConfig,
    instance: CompactInstance,
    arrivals: np.ndarray,
    rng: np.random.Generator,
):
    """Times and starting table indices of the allocator purge batches."""
    if not config.allocator_purge or len(arrivals) == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    t0, t1 = int(arrivals[0]), int(arrivals[-1])
    times = []
    t = t0 + rng.exponential(config.purge_interval_ns)
    while t < t1:
        times.append(int(t))
        t += rng.exponential(config.purge_interval_ns)
    starts = rng.integers(
        0, max(1, instance.n_tables), size=len(times), dtype=np.int64
    )
    return np.asarray(times, np.int64), starts


def _stall_schedule(
    config: SnapshotSimConfig, arrivals: np.ndarray, rng: np.random.Generator
):
    """Times and durations of whole-server stalls (hiccups, AOF fsync)."""
    if len(arrivals) == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    t0, t1 = int(arrivals[0]), int(arrivals[-1])
    times = []
    durs = []
    if config.hiccups:
        mean_gap = 2 * SEC
        t = t0 + rng.exponential(mean_gap)
        while t < t1:
            times.append(t)
            durs.append(int(1.5 * MSEC * rng.lognormal(0.0, 0.5)))
            t += rng.exponential(mean_gap)
    if config.aof:
        # fsync back-pressure: short stalls a few times per second.
        mean_gap = 150 * MSEC
        t = t0 + rng.exponential(mean_gap)
        while t < t1:
            times.append(t)
            durs.append(int(2.0 * MSEC * rng.lognormal(0.0, 0.4)))
            t += rng.exponential(mean_gap)
    if not times:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    order = np.argsort(times)
    return (
        np.asarray(times, np.int64)[order],
        np.asarray(durs, np.int64)[order],
    )


class _Runner:
    """The event loop: queries, stalls, the fork, and table-state updates."""

    def __init__(self, **kw) -> None:
        self.__dict__.update(kw)
        config: SnapshotSimConfig = kw["config"]
        instance: CompactInstance = kw["instance"]
        self.method = config.method
        self.threads = max(1, config.engine_threads)
        #: Always-on per-run trace; :attr:`interrupts` is derived from
        #: its kernel-category spans after the loop (see :meth:`run`).
        self.trace = Tracer()
        self.interrupts = InterruptRecorder()
        self.n_syncs = 0
        self.n_table_faults = 0
        self.n_data_cow = 0
        self.snapshot_start = float("inf")
        self.snapshot_end = float("inf")
        self._dirty = np.zeros(instance.n_pages, dtype=bool)
        self._synced = np.zeros(instance.n_tables, dtype=bool)
        self._shared = np.zeros(instance.n_tables, dtype=bool)
        self._pte_sync = config.sync_granularity == "pte"
        self._synced_pages = (
            np.zeros(instance.n_pages, dtype=bool) if self._pte_sync else None
        )
        self._pte_sync_ns = (
            config.costs.fault_overhead_ns
            + config.costs.dir_entry_copy_ns
            + config.costs.pte_entry_copy_ns
        )
        self._handshake_ns = config.sync_handshake_ns
        self._copy_start = 0.0
        self._copy_end = -1.0
        self._persist_start = -1.0
        self._persist_end = -1.0
        self._tables_per_ns = 0.0
        self._io_penalty = config.disk.io_penalty

    # ------------------------------------------------------------------

    def run(self) -> tuple[np.ndarray, np.ndarray]:
        """Execute the run; returns (latencies, completions).

        The single-threaded open-loop path (no TCP back-pressure) is
        computed with the vectorized prefix-scan timeline of
        :mod:`repro.sim.snapshot_vec` — bit-identical to the scalar
        loop (DESIGN.md §14), which remains both the fallback when the
        fixed-point iteration fails to settle and the only path for
        multi-threaded engines and bounded-inflight clients, whose
        completion feedback genuinely needs stepping.
        """
        from repro.sim import snapshot_vec
        from repro.workload.openloop import scalar_timeline_forced

        if (
            self.threads == 1
            and self.config.inflight_per_client == 0
            and not scalar_timeline_forced()
        ):
            result = snapshot_vec.try_vectorized(self)
            if result is not None:
                return result
        return self._run_scalar()

    def _run_scalar(self) -> tuple[np.ndarray, np.ndarray]:
        """The arrival-by-arrival reference loop."""
        arrivals = self.arrivals
        is_set = self.is_set
        tables = self.tables
        pages = self.pages
        service = self.service
        stall_times = self.stall_times
        stall_durs = self.stall_durs
        fault_pool = self.fault_pool
        data_cow_ns = self.data_cow_ns
        n = len(arrivals)

        latencies = np.empty(n, dtype=np.int64)
        completions = np.empty(n, dtype=np.int64)

        t_free = [0] * self.threads
        single = self.threads == 1
        free0 = 0  # scalar fast path
        mm_free = 0  # mm-lock availability (multi-thread path)
        clients = self.config.workload.config.clients
        per_client = self.config.inflight_per_client
        # 0 disables back-pressure: pure open-loop, timers at intended send.
        max_inflight = clients * per_client if per_client > 0 else n + 1
        s_idx = 0
        n_stalls = len(stall_times)
        purge_times = self.purge_times
        purge_starts = self.purge_starts
        p_idx = 0
        n_purges = len(purge_times)
        fp = 0
        fp_mask = len(fault_pool) - 1
        method = self.method
        forked = False
        trace = self.trace
        wait_total = 0  # summed (start - arrival) queueing delay

        for i in range(n):
            t_arr = arrivals[i]
            # TCP back-pressure: the client cannot have more than
            # max_inflight requests outstanding; the send stalls until an
            # older response lands, and the latency timer starts at the
            # actual send.
            if i >= max_inflight:
                unblocked = completions[i - max_inflight]
                if unblocked > t_arr:
                    t_arr = unblocked

            # Whole-server stalls that begin before this arrival.
            while s_idx < n_stalls and stall_times[s_idx] <= t_arr:
                st, sd = stall_times[s_idx], stall_durs[s_idx]
                if single:
                    free0 = max(free0, st) + sd
                else:
                    t_free = [max(f, st) + sd for f in t_free]
                s_idx += 1

            # Allocator purge batches (jemalloc decay) before this arrival.
            while p_idx < n_purges and purge_times[p_idx] <= t_arr:
                pt = purge_times[p_idx]
                cost = self._apply_purge(pt, purge_starts[p_idx], forked)
                if single:
                    free0 = max(free0, pt) + cost
                else:
                    t_free = [max(f, pt) + cost for f in t_free]
                p_idx += 1

            # The BGSAVE/BGREWRITEAOF command.
            if i == self.fork_idx and not forked:
                forked = True
                if single:
                    fork_start = max(t_arr, free0)
                    free0 = fork_start + self.fork_ns
                else:
                    fork_start = max(t_arr, min(t_free))
                    fork_end = fork_start + self.fork_ns
                    t_free = [max(f, fork_end) for f in t_free]
                fork_at = int(fork_start)
                trace.add(
                    "fork:" + method,
                    obs.CAT_KERNEL,
                    fork_at,
                    fork_at + self.fork_ns,
                )
                trace_fork_phases(
                    trace, method, self.counts, self.config.costs, fork_at
                )
                self._arm_windows(fork_start)

            # Serve the query.
            if single:
                start = t_arr if t_arr > free0 else free0
            else:
                j = t_free.index(min(t_free))
                start = t_arr if t_arr > t_free[j] else t_free[j]
            svc = service[i]
            kernel_extra = 0  # page-fault work, serialized on the mm lock

            if forked and start < self._persist_end:
                if is_set[i]:
                    k = tables[i]
                    if k >= 0:
                        if method == "async" and start < self._copy_end:
                            progress = (
                                start - self._copy_start
                            ) * self._tables_per_ns
                            if self._pte_sync:
                                pg0 = pages[i]
                                if (
                                    k >= progress
                                    and not self._synced_pages[pg0]
                                ):
                                    extra = (
                                        self._pte_sync_ns
                                        + self._handshake_ns
                                    )
                                    kernel_extra += extra
                                    self._synced_pages[pg0] = True
                                    self.n_syncs += 1
                                    at = int(start)
                                    trace.add(
                                        "async:proactive-sync-pte",
                                        obs.CAT_KERNEL,
                                        at,
                                        at + extra,
                                    )
                            elif k >= progress and not self._synced[k]:
                                extra = (
                                    int(fault_pool[fp & fp_mask])
                                    + self._handshake_ns
                                )
                                fp += 1
                                kernel_extra += extra
                                self._synced[k] = True
                                self.n_syncs += 1
                                at = int(start)
                                trace.add(
                                    "async:proactive-sync",
                                    obs.CAT_KERNEL,
                                    at,
                                    at + extra,
                                )
                        elif method == "odf" and self._shared[k]:
                            extra = int(fault_pool[fp & fp_mask])
                            fp += 1
                            kernel_extra += extra
                            self._shared[k] = False
                            self.n_table_faults += 1
                            at = int(start)
                            trace.add(
                                "odf:table-cow",
                                obs.CAT_KERNEL,
                                at,
                                at + extra,
                            )
                        pg = pages[i]
                        if not self._dirty[pg]:
                            kernel_extra += data_cow_ns
                            self._dirty[pg] = True
                            self.n_data_cow += 1
                if self._persist_start <= start:
                    svc = int(svc * self._io_penalty)

            if single:
                end = start + svc + kernel_extra
                free0 = end
            elif kernel_extra:
                # Page-fault handling serializes on the process's memory
                # locks (mmap_sem / PTE-table page locks), so concurrent
                # KeyDB worker threads queue behind each other here.
                fault_begin = start if start > mm_free else mm_free
                mm_free = fault_begin + kernel_extra
                end = mm_free + svc
                t_free[j] = end
            else:
                end = start + svc
                t_free[j] = end
            wait_total += start - t_arr
            latencies[i] = end - t_arr
            completions[i] = end

        trace.instant(
            "queue.wait",
            obs.CAT_PHASE,
            0,
            total_ns=int(wait_total),
            queries=n,
        )
        self.interrupts = InterruptRecorder.from_trace(trace)
        return latencies, completions

    def _apply_purge(self, t: int, start_table: int, forked: bool) -> int:
        """One jemalloc purge batch: returns its server-blocking cost.

        The madvise zap itself is cheap; the expensive part is the
        VMA-wide checkpoint handling while tables are still pending —
        ODF's table CoW or Async-fork's proactive synchronization, one
        ``copy_pmd_range()`` invocation per table.
        """
        instance: CompactInstance = self.instance
        k = max(1, int(instance.n_tables * self.config.purge_fraction))
        end_table = min(instance.n_tables, start_table + k)
        cost = (end_table - start_table) * 200  # the zap itself
        if not forked or t >= self._persist_end:
            return cost
        fault_ns = self.config.costs.table_fault_ns()
        if self.method == "odf":
            for idx in range(start_table, end_table):
                if self._shared[idx]:
                    self._shared[idx] = False
                    at = int(t) + cost
                    self.trace.add(
                        "odf:table-cow",
                        obs.CAT_KERNEL,
                        at,
                        at + fault_ns,
                        purge=True,
                    )
                    cost += fault_ns
                    self.n_table_faults += 1
        elif self.method == "async" and t < self._copy_end:
            progress = (t - self._copy_start) * self._tables_per_ns
            for idx in range(start_table, end_table):
                if idx >= progress and not self._synced[idx]:
                    self._synced[idx] = True
                    at = int(t) + cost
                    self.trace.add(
                        "async:proactive-sync",
                        obs.CAT_KERNEL,
                        at,
                        at + fault_ns,
                        purge=True,
                    )
                    cost += fault_ns
                    self.n_syncs += 1
        return cost

    def _arm_windows(self, fork_start: float) -> None:
        fork_end = fork_start + self.fork_ns
        self.snapshot_start = fork_start
        self._copy_start = fork_end
        if self.method == "async":
            self._copy_end = fork_end + self.child_copy_ns
            if self.child_copy_ns > 0:
                self._tables_per_ns = (
                    self.instance.n_tables / self.child_copy_ns
                )
        else:
            self._copy_end = fork_end
        if self.method == "odf":
            self._shared[:] = True
        self._persist_start = self._copy_end
        self._persist_end = self._persist_start + self.persist_ns
        self.snapshot_end = self._persist_end
        if self.method == "async" and self.child_copy_ns > 0:
            for name, s, e, attrs in child_copy_segments(
                self.counts,
                int(self._copy_start),
                int(self._copy_end),
                self.config.costs,
            ):
                self.trace.add(name, obs.CAT_PHASE, s, e, **attrs)
        what = "aof" if self.config.rewrite else "rdb"
        self.trace.add(
            "persist." + what,
            obs.CAT_IO,
            int(self._persist_start),
            int(self._persist_end),
            nbytes=self.instance.size_bytes,
        )
        self.trace.add(
            "snapshot.window",
            obs.CAT_SIM,
            int(fork_start),
            int(self._persist_end),
            method=self.method,
        )
