"""Persist-phase disk model.

The child serializes the whole dataset to disk; §6.2 pegs the effective
rate at ~200 MiB/s (8 GiB in ~40 s).  While the child streams, the parent
pays a small IO/memory-bandwidth interference penalty on every query —
this is what makes the throughput curves of Figures 17/18 recover
*gradually* rather than instantly.

``speedup`` lets the quick profile shorten the persist phase while the
cost model stays calibrated (see :mod:`repro.config`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MIB, SEC

#: §6.2: persisting 8 GiB takes ~40 s.
PAPER_PERSIST_BANDWIDTH = 200 * MIB


@dataclass(frozen=True)
class DiskModel:
    """Bandwidth and interference of the persist phase."""

    bandwidth: int = PAPER_PERSIST_BANDWIDTH
    speedup: float = 1.0
    #: Multiplier on parent service time while the child streams to disk.
    io_penalty: float = 1.12

    def persist_ns(self, nbytes: int) -> int:
        """Duration of serializing ``nbytes``."""
        if nbytes <= 0:
            return 0
        return int(nbytes / (self.bandwidth * self.speedup) * SEC)

    def scaled(self, speedup: float) -> "DiskModel":
        """Same disk with a different speedup factor."""
        return DiskModel(self.bandwidth, speedup, self.io_penalty)
