"""Persist-phase disk model.

The child serializes the whole dataset to disk; §6.2 pegs the effective
rate at ~200 MiB/s (8 GiB in ~40 s).  While the child streams, the parent
pays a small IO/memory-bandwidth interference penalty on every query —
this is what makes the throughput curves of Figures 17/18 recover
*gradually* rather than instantly.

``speedup`` lets the quick profile shorten the persist phase while the
cost model stays calibrated (see :mod:`repro.config`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiskWriteError
from repro.faults.plan import SITE_DISK_WRITE, FaultPlan
from repro.obs import tracer as obs
from repro.units import MIB, SEC

#: §6.2: persisting 8 GiB takes ~40 s.
PAPER_PERSIST_BANDWIDTH = 200 * MIB


@dataclass(frozen=True)
class DiskModel:
    """Bandwidth and interference of the persist phase."""

    bandwidth: int = PAPER_PERSIST_BANDWIDTH
    speedup: float = 1.0
    #: Multiplier on parent service time while the child streams to disk.
    io_penalty: float = 1.12

    def persist_ns(self, nbytes: int) -> int:
        """Duration of serializing ``nbytes``."""
        if nbytes <= 0:
            return 0
        return int(nbytes / (self.bandwidth * self.speedup) * SEC)

    def scaled(self, speedup: float) -> "DiskModel":
        """Same disk with a different speedup factor."""
        return DiskModel(self.bandwidth, speedup, self.io_penalty)


@dataclass
class DiskDevice:
    """A stateful disk: a :class:`DiskModel` plus injectable failures.

    The persistence paths write through this object so the fault plan's
    ``sim.disk.write`` site can make the write fail outright
    (``io-error`` → :class:`~repro.errors.DiskWriteError`) or collapse
    the bandwidth for one write (``stall`` adds the spec's magnitude in
    nanoseconds).  Both are the BGSAVE production failure modes the
    degradation state machine must survive.
    """

    model: DiskModel = field(default_factory=DiskModel)
    fault_plan: Optional[FaultPlan] = None
    #: Total payload bytes successfully persisted.
    bytes_written: int = 0
    #: Number of successful writes.
    writes: int = 0

    def write(self, nbytes: int, what: str = "rdb") -> int:
        """Persist ``nbytes``; returns the write duration in ns.

        Raises :class:`~repro.errors.DiskWriteError` when the fault
        plan schedules an ``io-error`` for this write.
        """
        duration = self.model.persist_ns(nbytes)
        if self.fault_plan is not None:
            spec = self.fault_plan.fire(
                SITE_DISK_WRITE, nbytes=nbytes, what=what
            )
            if spec is not None:
                if spec.kind == "io-error":
                    raise DiskWriteError(
                        f"injected disk write error ({what}, "
                        f"{nbytes} bytes)"
                    )
                duration += spec.magnitude  # 'stall'
        self.bytes_written += nbytes
        self.writes += 1
        if obs.ACTIVE:
            obs.emit_dur(
                "disk.write",
                obs.CAT_IO,
                duration,
                what=what,
                nbytes=nbytes,
            )
        return duration
