"""Vectorized timeline for :class:`repro.sim.snapshot_sim._Runner`.

The scalar event loop steps arrival-by-arrival; this module computes the
identical schedule with numpy prefix scans (DESIGN.md §14):

1. **Merged event sequence.**  Stalls, allocator purges, the fork call
   and the queries are one sequence ordered exactly as the scalar loop
   processes them: events with ``time <= arrival[i]`` drain before query
   ``i`` (stalls before purges, the fork after both), so each event's
   merged rank is ``(slot, class, original order)``.

2. **Exact prefix scan.**  Every event obeys
   ``end = max(time, prev_end) + duration``, which unrolls to a running
   maximum over ``time - shifted_cumsum`` — int64 adds/maxima only, so
   :func:`repro.workload.openloop.busy_schedule` is bit-identical to the
   scalar recurrence, not merely close.

3. **Fixed point over state-dependent durations.**  Post-fork durations
   depend on start times (persist/copy-window membership, the child-copy
   progress line) and on first-toucher state (ODF's shared tables,
   Async-fork's synced tables/pages, dirty data pages) shared between
   queries and purges.  The prefix chain up to the fork is closed-form
   (pre-fork events have no extras), which pins the snapshot windows;
   the post-fork durations are then iterated to a fixed point — scan,
   recompute extras from the starts, rescan — and the loop falls back to
   the scalar path if it does not converge, so byte-identity is
   unconditional.

Trace spans (fork block, per-fault kernel spans, purge ladders, the
``queue.wait`` instant) are emitted in merged-rank order after
convergence, reproducing the scalar append order byte-for-byte.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs import tracer as obs
from repro.obs.phases import trace_fork_phases
from repro.sim.interrupts import InterruptRecorder
from repro.workload.openloop import busy_schedule, event_slots

#: Fixed-point iteration cap before punting to the scalar loop.  The
#: durations usually settle in 2-4 rounds; oscillation is only possible
#: when a start time flaps across a window boundary.
MAX_ITERS = 20

K_STALL, K_PURGE, K_FORK, K_QUERY = 0, 1, 2, 3


def try_vectorized(runner) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Run the vectorized timeline; ``None`` means 'use the scalar loop'.

    On success the runner's trace, counters, windows and interrupts are
    populated exactly as the scalar loop would have left them.
    """
    arrivals = runner.arrivals
    n = len(arrivals)
    if n == 0:
        return None
    config = runner.config
    instance = runner.instance
    method = runner.method
    n_tables = instance.n_tables

    # -- the merged event sequence --------------------------------------
    stall_slots = event_slots(arrivals, runner.stall_times)
    stall_keep = stall_slots < n
    stall_times = runner.stall_times[stall_keep]
    stall_durs = runner.stall_durs[stall_keep]
    stall_slots = stall_slots[stall_keep]

    purge_slots = event_slots(arrivals, runner.purge_times)
    purge_keep = purge_slots < n
    purge_times = runner.purge_times[purge_keep]
    purge_table0 = runner.purge_starts[purge_keep]
    purge_slots = purge_slots[purge_keep]
    n_stalls, n_purges = len(stall_times), len(purge_times)

    span = max(1, int(n_tables * config.purge_fraction))
    purge_table1 = np.minimum(n_tables, purge_table0 + span)
    purge_base = (purge_table1 - purge_table0) * 200

    has_fork = 0 <= runner.fork_idx < n
    fork_idx = runner.fork_idx

    slot_all = np.concatenate(
        [
            stall_slots,
            purge_slots,
            np.asarray([fork_idx] if has_fork else [], dtype=np.int64),
            np.arange(n, dtype=np.int64),
        ]
    )
    kind_all = np.concatenate(
        [
            np.full(n_stalls, K_STALL, dtype=np.int64),
            np.full(n_purges, K_PURGE, dtype=np.int64),
            np.asarray([K_FORK] if has_fork else [], dtype=np.int64),
            np.full(n, K_QUERY, dtype=np.int64),
        ]
    )
    time_all = np.concatenate(
        [
            stall_times,
            purge_times,
            np.asarray(
                [arrivals[fork_idx]] if has_fork else [], dtype=np.int64
            ),
            arrivals,
        ]
    )
    dur_all = np.concatenate(
        [
            stall_durs,
            purge_base,
            np.asarray([runner.fork_ns] if has_fork else [], dtype=np.int64),
            runner.service,
        ]
    )
    order = np.argsort(slot_all * 4 + kind_all, kind="stable")
    times = time_all[order]
    base_durs = dur_all[order]
    kinds = kind_all[order]
    # Rank of each query / purge in the merged sequence.
    inv = np.empty(len(order), dtype=np.int64)
    inv[order] = np.arange(len(order))
    query_rank = inv[-n:]
    purge_rank = inv[n_stalls : n_stalls + n_purges]

    if not has_fork:
        # No fork, no state, no extras: one exact scan finishes the run.
        ends_all = busy_schedule(times, base_durs)
        ends_q = ends_all[query_rank]
        starts_q = ends_q - runner.service
        return _finish(
            runner, arrivals, starts_q, ends_q, None, None, None, None
        )

    # -- stage A: the exact pre-fork prefix -----------------------------
    # Pre-fork events have state-independent durations (no extras before
    # the fork, purges cost their base zap), so the first scan already
    # yields the exact fork start, which pins every window.
    fork_rank = int(inv[n_stalls + n_purges])
    ends_all = busy_schedule(times, base_durs)
    fork_start = ends_all[fork_rank] - runner.fork_ns  # np.int64, as scalar
    fork_end = fork_start + runner.fork_ns
    copy_start = fork_end
    copy_end = (
        fork_end + runner.child_copy_ns if method == "async" else fork_end
    )
    tables_per_ns = 0.0
    if method == "async" and runner.child_copy_ns > 0:
        tables_per_ns = n_tables / runner.child_copy_ns
    persist_start = copy_end
    persist_end = persist_start + runner.persist_ns

    # -- stage B: fixed point over the post-fork durations --------------
    post = slice(fork_idx, n)
    k_post = runner.tables[post]
    pg_post = runner.pages[post]
    set_post = runner.is_set[post]
    svc_post = runner.service[post]
    arr_post = arrivals[post]
    post_query_rank = query_rank[post]
    fault_ns = config.costs.table_fault_ns()
    pte_mode = runner._pte_sync
    handshake = runner._handshake_ns
    io_penalty = runner._io_penalty
    fp_mask = len(runner.fault_pool) - 1

    post_purge = np.flatnonzero(purge_rank > fork_rank)
    # Post-fork purge gates depend only on the purge's own (known) time.
    purge_live = np.zeros(n_purges, dtype=bool)
    if len(post_purge):
        pt = purge_times[post_purge]
        live = pt < persist_end
        if method == "odf":
            pass
        elif method == "async":
            live = live & (pt < copy_end)
        else:
            live = np.zeros(len(post_purge), dtype=bool)
        purge_live[post_purge] = live
    live_purges = np.flatnonzero(purge_live)

    durs = base_durs
    pay_sync = pay_pte = pay_cow = pool_vals = None
    purge_paid: list[np.ndarray] = []
    for _ in range(MAX_ITERS):
        ends_all = busy_schedule(times, durs)
        starts_post = ends_all[post_query_rank] - durs[post_query_rank]

        in_win = starts_post < persist_end
        base_cand = in_win & set_post & (k_post >= 0)
        svc_eff = np.where(
            in_win & (starts_post >= persist_start),
            (svc_post * io_penalty).astype(np.int64),
            svc_post,
        )

        pay_sync = np.zeros(len(svc_post), dtype=bool)
        pay_pte = np.zeros(len(svc_post), dtype=bool)
        purge_paid = [np.empty(0, np.int64)] * n_purges
        if method == "async":
            progress = (starts_post - copy_start) * tables_per_ns
            in_copy = base_cand & (starts_post < copy_end)
            sync_cand = in_copy & (k_post >= progress)
            if pte_mode:
                pay_pte = _first_per_key(sync_cand, pg_post)
                # Purges touch _synced (tables) which queries never set
                # in pte mode; only purge-vs-purge interaction remains.
                _resolve_purges_only(
                    live_purges,
                    purge_times,
                    purge_table0,
                    purge_table1,
                    copy_start,
                    tables_per_ns,
                    n_tables,
                    purge_paid,
                    progress_gate=True,
                )
            else:
                pay_sync = _first_per_key_with_purges(
                    sync_cand,
                    k_post,
                    post_query_rank,
                    live_purges,
                    purge_rank,
                    purge_times,
                    purge_table0,
                    purge_table1,
                    copy_start,
                    tables_per_ns,
                    n_tables,
                    purge_paid,
                    progress_gate=True,
                )
        elif method == "odf":
            pay_sync = _first_per_key_with_purges(
                base_cand,
                k_post,
                post_query_rank,
                live_purges,
                purge_rank,
                purge_times,
                purge_table0,
                purge_table1,
                copy_start,
                tables_per_ns,
                n_tables,
                purge_paid,
                progress_gate=False,
            )
        pay_cow = _first_per_key(base_cand, pg_post)

        # Shared fault-pool cursor: queries draw in arrival order.
        ordinals = np.cumsum(pay_sync) - 1
        pool_vals = runner.fault_pool[ordinals & fp_mask]

        extra = np.where(pay_cow, runner.data_cow_ns, 0).astype(np.int64)
        if method == "async":
            if pte_mode:
                extra += np.where(
                    pay_pte, runner._pte_sync_ns + handshake, 0
                )
            else:
                extra += np.where(pay_sync, pool_vals + handshake, 0)
        elif method == "odf":
            extra += np.where(pay_sync, pool_vals, 0)

        new_durs = durs.copy()
        new_durs[post_query_rank] = svc_eff + extra
        if len(live_purges):
            paid_counts = np.asarray(
                [len(purge_paid[p]) for p in live_purges], dtype=np.int64
            )
            new_durs[purge_rank[live_purges]] = (
                purge_base[live_purges] + paid_counts * fault_ns
            )
        if np.array_equal(new_durs, durs):
            break
        durs = new_durs
    else:
        return None  # no fixed point: the scalar loop settles it

    ends_q = ends_all[query_rank]
    starts_q = ends_q - durs[query_rank]
    return _finish(
        runner,
        arrivals,
        starts_q,
        ends_q,
        fork_start,
        (pay_sync, pay_pte, pay_cow, pool_vals, starts_q[post], post_query_rank),
        (live_purges, purge_paid, purge_times, purge_rank, purge_base),
        fault_ns,
    )


def _first_per_key(cand: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """First candidate per key wins (queries only, in arrival order)."""
    pays = np.zeros(len(cand), dtype=bool)
    idx = np.flatnonzero(cand)
    if len(idx):
        _, first = np.unique(keys[idx], return_index=True)
        pays[idx[first]] = True
    return pays


def _purge_cover(
    purge_idx: int,
    purge_times,
    purge_table0,
    purge_table1,
    copy_start,
    tables_per_ns,
    progress_gate: bool,
) -> np.ndarray:
    """Tables one live purge covers, in the scalar loop's ascending order."""
    cover = np.arange(
        purge_table0[purge_idx], purge_table1[purge_idx], dtype=np.int64
    )
    if progress_gate:
        progress = (purge_times[purge_idx] - copy_start) * tables_per_ns
        cover = cover[cover >= progress]
    return cover


def _resolve_purges_only(
    live_purges,
    purge_times,
    purge_table0,
    purge_table1,
    copy_start,
    tables_per_ns,
    n_tables,
    purge_paid,
    progress_gate: bool,
) -> None:
    """Purge-vs-purge first-toucher state (pte mode's ``_synced``)."""
    consumed = np.zeros(n_tables, dtype=bool)
    for p in live_purges:
        cover = _purge_cover(
            p,
            purge_times,
            purge_table0,
            purge_table1,
            copy_start,
            tables_per_ns,
            progress_gate,
        )
        fresh = cover[~consumed[cover]]
        consumed[fresh] = True
        purge_paid[p] = fresh


def _first_per_key_with_purges(
    cand,
    keys,
    cand_ranks_all,
    live_purges,
    purge_rank,
    purge_times,
    purge_table0,
    purge_table1,
    copy_start,
    tables_per_ns,
    n_tables,
    purge_paid,
    progress_gate: bool,
) -> np.ndarray:
    """First toucher per table across interleaved queries and purges.

    Queries arrive in rank order; each live purge is a barrier that bulk
    consumes its covered tables.  Within a stretch between purges the
    first candidate query per table pays; a purge then pays every still
    unconsumed table it covers (ascending, as the scalar ladder walks).
    """
    pays = np.zeros(len(cand), dtype=bool)
    consumed = np.zeros(n_tables, dtype=bool)
    cand_idx = np.flatnonzero(cand)
    cand_keys = keys[cand_idx]
    cand_ranks = cand_ranks_all[cand_idx]  # ascending: queries in order
    seg = 0

    def settle(upto: int, seg: int) -> int:
        if upto > seg:
            seg_keys = cand_keys[seg:upto]
            uniq, first = np.unique(seg_keys, return_index=True)
            fresh = ~consumed[uniq]
            pays[cand_idx[seg + first[fresh]]] = True
            consumed[uniq[fresh]] = True
        return upto

    for p in live_purges:
        seg = settle(
            int(np.searchsorted(cand_ranks, purge_rank[p])), seg
        )
        cover = _purge_cover(
            p,
            purge_times,
            purge_table0,
            purge_table1,
            copy_start,
            tables_per_ns,
            progress_gate,
        )
        fresh = cover[~consumed[cover]]
        consumed[fresh] = True
        purge_paid[p] = fresh
    settle(len(cand_ranks), seg)
    return pays


def _finish(
    runner,
    arrivals,
    starts_q,
    ends_q,
    fork_start,
    query_pays,
    purge_info,
    fault_ns=0,
) -> tuple[np.ndarray, np.ndarray]:
    """Emit the trace in scalar append order and fill the counters."""
    trace = runner.trace
    method = runner.method
    n = len(arrivals)

    if fork_start is not None:
        fork_at = int(fork_start)
        trace.add(
            "fork:" + method,
            obs.CAT_KERNEL,
            fork_at,
            fork_at + runner.fork_ns,
        )
        trace_fork_phases(
            trace, method, runner.counts, runner.config.costs, fork_at
        )
        runner._arm_windows(fork_start)

        (
            pay_sync,
            pay_pte,
            pay_cow,
            pool_vals,
            starts_post,
            post_query_rank,
        ) = query_pays
        live_purges, purge_paid, purge_times, purge_rank, purge_base = (
            purge_info
        )

        if method == "async" and runner._pte_sync:
            span_name, spans_mask = "async:proactive-sync-pte", pay_pte
            handshake = runner._handshake_ns
            extras = np.full(
                len(starts_post), runner._pte_sync_ns + handshake
            )
        elif method == "async":
            span_name, spans_mask = "async:proactive-sync", pay_sync
            extras = pool_vals + runner._handshake_ns
        elif method == "odf":
            span_name, spans_mask = "odf:table-cow", pay_sync
            extras = pool_vals
        else:
            span_name, spans_mask = "", np.zeros(0, dtype=bool)
            extras = np.zeros(0, dtype=np.int64)

        purge_name = (
            "odf:table-cow" if method == "odf" else "async:proactive-sync"
        )
        # Interleave paying queries and purge ladders by merged rank.
        events: list[tuple[int, int, int]] = []  # (rank, kind, payload)
        for j in np.flatnonzero(spans_mask):
            events.append((int(post_query_rank[j]), K_QUERY, int(j)))
        for p in live_purges:
            if len(purge_paid[p]):
                events.append((int(purge_rank[p]), K_PURGE, int(p)))
        events.sort()
        for _, kind, payload in events:
            if kind == K_QUERY:
                at = int(starts_post[payload])
                trace.add(
                    span_name,
                    obs.CAT_KERNEL,
                    at,
                    at + int(extras[payload]),
                )
            else:
                t = int(purge_times[payload])
                cost = int(purge_base[payload])
                for idx in purge_paid[payload]:
                    at = t + cost
                    trace.add(
                        purge_name,
                        obs.CAT_KERNEL,
                        at,
                        at + fault_ns,
                        purge=True,
                    )
                    cost += fault_ns

        purge_pay_total = sum(len(purge_paid[p]) for p in live_purges)
        if method == "async":
            runner.n_syncs = int(
                np.count_nonzero(pay_sync)
                + np.count_nonzero(pay_pte)
                + purge_pay_total
            )
        elif method == "odf":
            runner.n_table_faults = int(
                np.count_nonzero(pay_sync) + purge_pay_total
            )
        runner.n_data_cow = int(np.count_nonzero(pay_cow))

    wait_total = int(np.sum(starts_q - arrivals))
    trace.instant(
        "queue.wait",
        obs.CAT_PHASE,
        0,
        total_ns=wait_total,
        queries=n,
    )
    runner.interrupts = InterruptRecorder.from_trace(trace)
    latencies = (ends_q - arrivals).astype(np.int64)
    return latencies, ends_q.astype(np.int64)
