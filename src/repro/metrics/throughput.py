"""Windowed throughput, as reported in Figures 17-19.

The paper samples completed queries per 50 ms window on the server side.
``windowed_throughput`` bins completion times; :class:`ThroughputSeries`
carries the series plus helpers for the minimum-throughput statistic of
Figure 19 (restricted to the snapshot window, where the dips happen).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import MSEC, SEC

#: The paper's sampling window.
DEFAULT_WINDOW_NS = 50 * MSEC


@dataclass
class ThroughputSeries:
    """Queries-per-second sampled over fixed windows."""

    window_ns: int
    #: Start time of each window (ns).
    starts_ns: np.ndarray
    #: Throughput of each window, in queries/second.
    qps: np.ndarray

    def __len__(self) -> int:
        return len(self.qps)

    def min_qps(
        self, start_ns: float | None = None, end_ns: float | None = None
    ) -> float:
        """Minimum windowed throughput, optionally within [start, end)."""
        qps = self.qps
        if start_ns is not None or end_ns is not None:
            lo = -np.inf if start_ns is None else start_ns
            hi = np.inf if end_ns is None else end_ns
            ends = self.starts_ns + self.window_ns
            mask = (ends > lo) & (self.starts_ns < hi)
            qps = qps[mask]
        if len(qps) == 0:
            return float("nan")
        return float(qps.min())

    def mean_qps(self) -> float:
        """Average throughput over the whole series."""
        if len(self.qps) == 0:
            return float("nan")
        return float(self.qps.mean())


def windowed_throughput(
    completions_ns: np.ndarray,
    window_ns: int = DEFAULT_WINDOW_NS,
    start_ns: float | None = None,
    end_ns: float | None = None,
) -> ThroughputSeries:
    """Bin completion times into fixed windows.

    ``start``/``end`` default to the observed completion range; partial
    trailing windows are dropped so the last sample is not artificially
    low.
    """
    if len(completions_ns) == 0:
        return ThroughputSeries(window_ns, np.empty(0), np.empty(0))
    lo = float(completions_ns.min()) if start_ns is None else float(start_ns)
    hi = float(completions_ns.max()) if end_ns is None else float(end_ns)
    n_windows = int((hi - lo) // window_ns)
    if n_windows <= 0:
        return ThroughputSeries(window_ns, np.empty(0), np.empty(0))
    edges = lo + np.arange(n_windows + 1) * window_ns
    counts, _ = np.histogram(completions_ns, bins=edges)
    qps = counts * (SEC / window_ns)
    return ThroughputSeries(window_ns, edges[:-1], qps.astype(float))
