"""Per-tenant usage metering for the proxy tier.

The proxy fronts one shared cluster for many tenants; billing and
capacity questions ("who is sending the writes?", "whose p99 moved?")
need per-tenant counters, not machine-wide ones.  A
:class:`UsageMeter` keeps one :class:`TenantUsage` ledger per tenant
name and snapshots under dotted names (``usage.<tenant>.<counter>``)
so reports can merge it with the engine registries.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TenantUsage:
    """One tenant's traffic ledger."""

    commands: int = 0
    reads: int = 0
    writes: int = 0
    keyless: int = 0
    errors: int = 0
    redirects: int = 0
    rtt_ns: int = 0
    connections_opened: int = 0
    connections_closed: int = 0
    connections_refused: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Commands metered as writes (everything else keyed is a read).
WRITE_COMMANDS = frozenset(
    {
        b"SET", b"SETNX", b"GETSET", b"APPEND", b"INCR", b"INCRBY",
        b"DECR", b"DECRBY", b"MSET", b"DEL", b"UNLINK", b"EXPIRE",
        b"PEXPIRE", b"PERSIST", b"RESTORE", b"FLUSHALL",
    }
)


class UsageMeter:
    """Tenant name -> :class:`TenantUsage`, created on first touch."""

    def __init__(self) -> None:
        self._tenants: dict[str, TenantUsage] = {}

    def usage(self, tenant: str) -> TenantUsage:
        ledger = self._tenants.get(tenant)
        if ledger is None:
            ledger = self._tenants[tenant] = TenantUsage()
        return ledger

    def record_command(
        self,
        tenant: str,
        name: bytes,
        *,
        keyed: bool,
        rtt_ns: int = 0,
        redirects: int = 0,
        error: bool = False,
    ) -> None:
        """Meter one routed command under a tenant."""
        ledger = self.usage(tenant)
        ledger.commands += 1
        if not keyed:
            ledger.keyless += 1
        elif name.upper() in WRITE_COMMANDS:
            ledger.writes += 1
        else:
            ledger.reads += 1
        ledger.rtt_ns += rtt_ns
        ledger.redirects += redirects
        if error:
            ledger.errors += 1

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def snapshot(self) -> dict[str, int]:
        """Dotted-name counters, sorted (the registry convention)."""
        snap: dict[str, int] = {}
        for tenant, ledger in self._tenants.items():
            for name, value in ledger.as_dict().items():
                snap[f"usage.{tenant}.{name}"] = value
        return dict(sorted(snap.items()))
