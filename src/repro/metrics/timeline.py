"""Post-hoc timeline analysis of a simulated run.

Figures 17/18 plot throughput over time; understanding *why* it dips
needs two more derived series — the server queue depth and where the
kernel-mode time went.  Everything here is computed vectorized from the
arrays a :class:`~repro.sim.snapshot_sim.SnapshotSimResult` already
carries, so it costs nothing in the simulation hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import MSEC


@dataclass
class QueueDepthSeries:
    """Outstanding queries sampled on a fixed grid."""

    times_ns: np.ndarray
    depth: np.ndarray

    def max_depth(self) -> int:
        """Deepest backlog observed."""
        if len(self.depth) == 0:
            return 0
        return int(self.depth.max())

    def at(self, t_ns: float) -> int:
        """Queue depth at (the grid point before) ``t_ns``."""
        if len(self.times_ns) == 0:
            return 0
        idx = int(np.searchsorted(self.times_ns, t_ns, side="right")) - 1
        if idx < 0:
            return 0
        return int(self.depth[idx])


def queue_depth(
    arrivals_ns: np.ndarray,
    completions_ns: np.ndarray,
    step_ns: int = 10 * MSEC,
) -> QueueDepthSeries:
    """Outstanding (arrived, not completed) queries over time.

    Works for any number of servers: depth(t) = |arrivals <= t| -
    |completions <= t|.  A run captured mid-flight can have arrivals
    with no completions yet; the grid then spans the arrivals alone
    (every point reads as backlog).
    """
    if len(arrivals_ns) == 0:
        return QueueDepthSeries(np.empty(0, np.int64), np.empty(0, np.int64))
    lo = int(arrivals_ns.min())
    if len(completions_ns) == 0:
        hi = int(arrivals_ns.max())
    else:
        hi = int(completions_ns.max())
    grid = np.arange(lo, hi + step_ns, step_ns, dtype=np.int64)
    arrived = np.searchsorted(np.sort(arrivals_ns), grid, side="right")
    done = np.searchsorted(np.sort(completions_ns), grid, side="right")
    return QueueDepthSeries(grid, (arrived - done).astype(np.int64))


@dataclass
class KernelTimeBreakdown:
    """Where the parent's kernel-mode time went during a run."""

    by_reason_ns: dict[str, int]

    @property
    def total_ns(self) -> int:
        """All kernel-mode nanoseconds."""
        return sum(self.by_reason_ns.values())

    def share(self, reason_prefix: str) -> float:
        """Fraction of kernel time under a reason prefix."""
        total = self.total_ns
        if total == 0:
            return 0.0
        matching = sum(
            ns
            for reason, ns in self.by_reason_ns.items()
            if reason.startswith(reason_prefix)
        )
        return matching / total

    def rows(self) -> list[tuple[str, float]]:
        """(reason, milliseconds) rows, largest first."""
        return sorted(
            ((r, ns / 1e6) for r, ns in self.by_reason_ns.items()),
            key=lambda item: -item[1],
        )


def kernel_breakdown(interrupts) -> KernelTimeBreakdown:
    """Aggregate an :class:`~repro.sim.interrupts.InterruptRecorder`."""
    by_reason: dict[str, int] = {}
    for reason, duration in zip(
        interrupts.reasons, interrupts.durations_ns
    ):
        by_reason[reason] = by_reason.get(reason, 0) + int(duration)
    return KernelTimeBreakdown(by_reason)


def backlog_drain_time_ns(
    arrivals_ns: np.ndarray,
    completions_ns: np.ndarray,
    after_ns: float,
    depth_threshold: int = 8,
    step_ns: int = 10 * MSEC,
) -> int:
    """How long after ``after_ns`` the backlog stays above a threshold.

    The recovery-time statistic behind "the throughput increases to the
    normal level much faster with Async-fork" (Appendix C).
    """
    series = queue_depth(arrivals_ns, completions_ns, step_ns)
    mask = series.times_ns >= after_ns
    times = series.times_ns[mask]
    depth = series.depth[mask]
    above = depth > depth_threshold
    if not above.any():
        return 0
    last = int(np.nonzero(above)[0][-1])
    return int(times[last] - after_ns) + step_ns
