"""Fault and recovery accounting.

Every chaos run must end with a ledger: which faults fired, what the
supervision layer did about each one, and how the engine's degradation
state machine moved.  :class:`FaultCounters` is that ledger — the
supervisor and the recovery path write into it, the chaos experiment
reads it back out, and its totals are what the acceptance oracle checks
("every injected fault is either recovered from or surfaced").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.report import Table


@dataclass
class FaultCounters:
    """Per-fault / per-recovery counters for one engine's lifetime."""

    #: Faults observed, keyed by injection site.
    faults_by_site: dict = field(default_factory=dict)
    #: Faults observed, keyed by fault kind.
    faults_by_kind: dict = field(default_factory=dict)
    #: Background jobs that failed, keyed by failure reason.
    job_failures: dict = field(default_factory=dict)
    #: Snapshot/rewrite retries performed by the supervisor.
    retries: int = 0
    #: Total simulated ns slept in retry backoff.
    backoff_ns: int = 0
    #: Hung children aborted by the watchdog.
    watchdog_kills: int = 0
    #: async-fork -> default-fork demotions.
    fallbacks: int = 0
    #: default-fork -> async-fork re-promotions after a clean snapshot.
    promotions: int = 0
    #: Writes rejected while the engine refused writes (MISCONF-style).
    writes_refused: int = 0
    #: Times the engine entered the writes-refused state.
    refusal_episodes: int = 0
    #: Recovery outcomes, keyed by event ('torn-tail-repaired',
    #: 'generation-fallback', 'snapshot-verified', ...).
    recoveries: dict = field(default_factory=dict)
    #: (simulated ns, mode) transitions of the degradation state machine.
    mode_timeline: list = field(default_factory=list)

    # -- recording ---------------------------------------------------------

    def record_fault(self, site: str, kind: str) -> None:
        """Count one observed fault injection."""
        self.faults_by_site[site] = self.faults_by_site.get(site, 0) + 1
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1

    def record_job_failure(self, reason: str) -> None:
        """Count one failed background job by reason."""
        self.job_failures[reason] = self.job_failures.get(reason, 0) + 1

    def record_recovery(self, event: str) -> None:
        """Count one recovery-path event."""
        self.recoveries[event] = self.recoveries.get(event, 0) + 1

    def record_mode(self, now_ns: int, mode: str) -> None:
        """Append a degradation-state transition to the timeline."""
        self.mode_timeline.append((now_ns, mode))

    # -- reading -----------------------------------------------------------

    @property
    def total_faults(self) -> int:
        """Faults observed across every site."""
        return sum(self.faults_by_site.values())

    def as_table(self, title: str = "Fault & recovery counters") -> Table:
        """Render the ledger as a report table."""
        table = Table(title, ["counter", "value"])
        for site in sorted(self.faults_by_site):
            table.add_row(f"fault[{site}]", self.faults_by_site[site])
        for reason in sorted(self.job_failures):
            table.add_row(f"job-failure[{reason}]", self.job_failures[reason])
        table.add_row("retries", self.retries)
        table.add_row("watchdog-kills", self.watchdog_kills)
        table.add_row("fallbacks", self.fallbacks)
        table.add_row("promotions", self.promotions)
        table.add_row("writes-refused", self.writes_refused)
        for event in sorted(self.recoveries):
            table.add_row(f"recovery[{event}]", self.recoveries[event])
        return table
