"""Measurement machinery: latency percentiles, windowed throughput, and
paper-style report tables."""

from repro.metrics.faults import FaultCounters
from repro.metrics.latency import LatencySample, percentile
from repro.metrics.throughput import ThroughputSeries, windowed_throughput
from repro.metrics.report import Comparison, Table

__all__ = [
    "Comparison",
    "FaultCounters",
    "LatencySample",
    "Table",
    "ThroughputSeries",
    "percentile",
    "windowed_throughput",
]
