"""Paper-style text tables.

Every benchmark prints the rows the corresponding paper figure/table
reports, with the paper's own numbers alongside where available, so the
reproduction can be eyeballed directly from the bench output (and copied
into EXPERIMENTS.md).
"""

from __future__ import annotations

import csv
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional


class Table:
    """Minimal fixed-width table renderer."""

    def __init__(self, title: str, headers: list[str]) -> None:
        self.title = title
        self.headers = headers
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        """Append a row; cells are str()'d (floats get 3 significant-ish
        decimals)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """The table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout with surrounding blank lines."""
        print()
        print(self.render())
        print()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


@dataclass
class Comparison:
    """One paper-vs-measured data point for EXPERIMENTS.md."""

    label: str
    paper: Optional[float]
    measured: float
    unit: str = "ms"
    note: str = ""

    def ratio(self) -> Optional[float]:
        """measured / paper, when the paper value is known and nonzero."""
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def row(self) -> list:
        """The comparison as report-table cells."""
        paper = "-" if self.paper is None else _fmt(self.paper)
        ratio = self.ratio()
        return [
            self.label,
            paper,
            _fmt(self.measured),
            self.unit,
            "-" if ratio is None else f"{ratio:.2f}x",
            self.note,
        ]


@dataclass
class ExperimentReport:
    """Everything one experiment wants to say."""

    experiment_id: str
    description: str
    tables: list[Table] = field(default_factory=list)
    comparisons: list[Comparison] = field(default_factory=list)
    shape_checks: dict[str, bool] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        """Attach a rendered table."""
        self.tables.append(table)

    def check(self, name: str, ok: bool) -> bool:
        """Record a shape assertion (who wins / how gaps scale)."""
        self.shape_checks[name] = bool(ok)
        return bool(ok)

    def all_checks_pass(self) -> bool:
        """Whether every recorded shape assertion held."""
        return all(self.shape_checks.values())

    def render(self) -> str:
        """Full report text."""
        lines = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        if self.comparisons:
            comp = Table(
                "\npaper vs measured",
                ["point", "paper", "measured", "unit", "ratio", "note"],
            )
            for c in self.comparisons:
                comp.add_row(*c.row())
            lines.append(comp.render())
        if self.shape_checks:
            lines.append("")
            for name, ok in self.shape_checks.items():
                lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout."""
        print()
        print(self.render())
        print()

    def save_csv(self, directory) -> list[str]:
        """Export every table (and the comparisons) as CSV files.

        Returns the written file names.  Downstream plotting of the
        figures starts from these.
        """
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for i, table in enumerate(self.tables):
            slug = _slugify(table.title) or f"table{i}"
            name = f"{_slugify(self.experiment_id)}_{slug}.csv"
            with open(directory / name, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(table.headers)
                writer.writerows(table.rows)
            written.append(name)
        if self.comparisons:
            name = f"{_slugify(self.experiment_id)}_paper_vs_measured.csv"
            with open(directory / name, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(
                    ["point", "paper", "measured", "unit", "ratio", "note"]
                )
                for comparison in self.comparisons:
                    writer.writerow(comparison.row())
            written.append(name)
        return written


def _slugify(text: str) -> str:
    text = text.strip().lower().split("\n")[-1]
    text = re.sub(r"[^a-z0-9]+", "-", text).strip("-")
    return text[:60]


def fmt_rows(rows: Iterable[Iterable]) -> str:
    """Quick helper for ad-hoc row dumps in examples."""
    return "\n".join("  ".join(_fmt(c) for c in row) for row in rows)
