"""Latency samples and percentile machinery.

The paper reports the 99 %-ile and the maximum latency of *snapshot
queries* (arrivals between the fork call and the end of persistence) and
*normal queries* (§3, §6.1).  :class:`LatencySample` wraps a numpy array of
per-query latencies and knows how to split itself on the snapshot window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import ns_to_ms


def percentile(values: np.ndarray, q: float) -> float:
    """Percentile with the 'lower-of-the-two' convention used by
    latency-measurement tools (no interpolation above observed samples).

    Raises :class:`ValueError` on an empty sample — a percentile of
    nothing is a caller bug, and the nan the old behaviour returned
    silently poisoned every mean/comparison downstream.
    """
    if len(values) == 0:
        raise ValueError(
            f"cannot take the {q} percentile of an empty sample; "
            "guard the call site (empty windows are expected for "
            "method 'none' runs)"
        )
    return float(np.percentile(values, q, method="lower"))


@dataclass
class LatencySample:
    """Latencies (ns) of a set of queries, with their arrival times."""

    latencies_ns: np.ndarray
    arrivals_ns: np.ndarray

    def __post_init__(self) -> None:
        if len(self.latencies_ns) != len(self.arrivals_ns):
            raise ValueError("latencies and arrivals must align")
        # Real samples are integer nanoseconds; normalize stray float
        # arrays (old callers, `np.empty(0)` defaults) so merged samples
        # never silently promote to float64.
        self.latencies_ns = self._as_int64(self.latencies_ns)
        self.arrivals_ns = self._as_int64(self.arrivals_ns)

    @staticmethod
    def _as_int64(values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype == np.int64:
            return arr
        if not np.issubdtype(arr.dtype, np.number):
            raise ValueError(
                f"latency arrays must be numeric, got dtype {arr.dtype}"
            )
        return arr.astype(np.int64)

    def __len__(self) -> int:
        return len(self.latencies_ns)

    # -- selection ---------------------------------------------------------

    def window(self, start_ns: int, end_ns: int) -> "LatencySample":
        """Queries whose *arrival* falls inside [start, end)."""
        mask = (self.arrivals_ns >= start_ns) & (self.arrivals_ns < end_ns)
        return LatencySample(self.latencies_ns[mask], self.arrivals_ns[mask])

    def outside(self, start_ns: int, end_ns: int) -> "LatencySample":
        """Queries arriving outside [start, end) — the 'normal' queries."""
        mask = (self.arrivals_ns < start_ns) | (self.arrivals_ns >= end_ns)
        return LatencySample(self.latencies_ns[mask], self.arrivals_ns[mask])

    # -- statistics ----------------------------------------------------------

    def p99_ns(self) -> float:
        """99 %-ile latency in nanoseconds (raises on an empty sample)."""
        return percentile(self.latencies_ns, 99.0)

    def p999_ns(self) -> float:
        """99.9 %-ile latency in nanoseconds (raises on an empty sample)."""
        return percentile(self.latencies_ns, 99.9)

    def max_ns(self) -> float:
        """Maximum latency in nanoseconds."""
        if len(self.latencies_ns) == 0:
            return float("nan")
        return float(self.latencies_ns.max())

    def mean_ns(self) -> float:
        """Mean latency in nanoseconds."""
        if len(self.latencies_ns) == 0:
            return float("nan")
        return float(self.latencies_ns.mean())

    def p99_ms(self) -> float:
        """99 %-ile latency in milliseconds (the paper's unit)."""
        return ns_to_ms(self.p99_ns())

    def max_ms(self) -> float:
        """Maximum latency in milliseconds."""
        return ns_to_ms(self.max_ns())

    def summary(self) -> dict:
        """Dict of the headline statistics (ms).

        Reporting convenience: an empty sample yields nan statistics
        (rendered as '-' by the tables) instead of raising.
        """
        if len(self) == 0:
            nan = float("nan")
            return {
                "count": 0,
                "mean_ms": nan,
                "p99_ms": nan,
                "p999_ms": nan,
                "max_ms": nan,
            }
        return {
            "count": len(self),
            "mean_ms": ns_to_ms(self.mean_ns()),
            "p99_ms": self.p99_ms(),
            "p999_ms": ns_to_ms(self.p999_ns()),
            "max_ms": self.max_ms(),
        }


def merge(samples: list[LatencySample]) -> LatencySample:
    """Concatenate several samples (e.g. repeats with different seeds)."""
    if not samples:
        return LatencySample(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
    return LatencySample(
        np.concatenate([s.latencies_ns for s in samples]),
        np.concatenate([s.arrivals_ns for s in samples]),
    )
