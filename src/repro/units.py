"""Units and constants shared across the simulated kernel and the harness.

The memory geometry mirrors x86-64 Linux with 4 KiB pages and a four-level
radix page table (P4D folded, as in the paper): every table at every level
holds 512 entries, so one PTE table spans 2 MiB of virtual address space and
one PMD table spans 1 GiB.

Times are integer nanoseconds throughout the simulator; helpers here convert
to and from human-readable figures used when printing paper-style tables.
"""

from __future__ import annotations

# --- memory geometry -------------------------------------------------------

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB

ENTRIES_PER_TABLE = 512
TABLE_SHIFT = 9  # log2(ENTRIES_PER_TABLE)

#: Span of one leaf (PTE) table: 512 pages = 2 MiB.
PTE_TABLE_SPAN = ENTRIES_PER_TABLE * PAGE_SIZE
#: Span of one PMD table: 512 PTE tables = 1 GiB.
PMD_TABLE_SPAN = ENTRIES_PER_TABLE * PTE_TABLE_SPAN
#: Span of one PUD table: 512 GiB.
PUD_TABLE_SPAN = ENTRIES_PER_TABLE * PMD_TABLE_SPAN

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

PAGES_PER_GIB = GIB // PAGE_SIZE          # 2**18
PTE_TABLES_PER_GIB = PAGES_PER_GIB // ENTRIES_PER_TABLE  # 512

# --- time ------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / MSEC


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / USEC


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return int(value * MSEC)


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return int(value * USEC)


def sec(value: float) -> int:
    """Seconds -> integer nanoseconds."""
    return int(value * SEC)


def fmt_ns(ns: float) -> str:
    """Render a duration with the most natural unit, e.g. ``'1.50ms'``."""
    if ns < USEC:
        return f"{ns:.0f}ns"
    if ns < MSEC:
        return f"{ns / USEC:.2f}us"
    if ns < SEC:
        return f"{ns / MSEC:.2f}ms"
    return f"{ns / SEC:.2f}s"


def fmt_bytes(n: int) -> str:
    """Render a byte count with the most natural unit, e.g. ``'8.0GiB'``."""
    if n >= GIB:
        return f"{n / GIB:.1f}GiB"
    if n >= MIB:
        return f"{n / MIB:.1f}MiB"
    if n >= KIB:
        return f"{n / KIB:.1f}KiB"
    return f"{n}B"


# --- virtual address decomposition ------------------------------------------

PTE_INDEX_SHIFT = PAGE_SHIFT                    # bits 12..20
PMD_INDEX_SHIFT = PTE_INDEX_SHIFT + TABLE_SHIFT  # bits 21..29
PUD_INDEX_SHIFT = PMD_INDEX_SHIFT + TABLE_SHIFT  # bits 30..38
PGD_INDEX_SHIFT = PUD_INDEX_SHIFT + TABLE_SHIFT  # bits 39..47

INDEX_MASK = ENTRIES_PER_TABLE - 1

#: Highest representable user virtual address + 1 (48-bit address space).
ADDRESS_SPACE_SIZE = 1 << (PGD_INDEX_SHIFT + TABLE_SHIFT)


def pgd_index(vaddr: int) -> int:
    """Index into the PGD for a virtual address."""
    return (vaddr >> PGD_INDEX_SHIFT) & INDEX_MASK


def pud_index(vaddr: int) -> int:
    """Index into a PUD table for a virtual address."""
    return (vaddr >> PUD_INDEX_SHIFT) & INDEX_MASK


def pmd_index(vaddr: int) -> int:
    """Index into a PMD table for a virtual address."""
    return (vaddr >> PMD_INDEX_SHIFT) & INDEX_MASK


def pte_index(vaddr: int) -> int:
    """Index into a PTE table for a virtual address."""
    return (vaddr >> PTE_INDEX_SHIFT) & INDEX_MASK


def page_align_down(vaddr: int) -> int:
    """Round an address down to a page boundary."""
    return vaddr & ~(PAGE_SIZE - 1)


def page_align_up(vaddr: int) -> int:
    """Round an address up to a page boundary."""
    return (vaddr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def pages_in_range(start: int, end: int) -> int:
    """Number of pages covered by the half-open byte range [start, end)."""
    return (page_align_up(end) - page_align_down(start)) // PAGE_SIZE
