"""Async-fork: the paper's primary contribution.

Public API:

* :class:`~repro.core.async_fork.AsyncFork` — the fork engine.  The parent
  copies only PGD/PUD entries and write-protects its PMD entries, then
  returns to user mode; the microsecond-scale call is what removes the
  latency spike.
* :class:`~repro.core.async_fork.AsyncForkSession` — drives the child-side
  PMD/PTE copy (optionally with multiple kernel threads) and performs the
  parent's *proactive synchronization* when a checkpoint detects a
  modification to a not-yet-copied PTE table.
* :class:`~repro.core.policy.MemCgroup` / :class:`~repro.core.policy.ForkPolicy`
  — the memory-cgroup style opt-in switch of §5.2.
"""

from repro.core.async_fork import AsyncFork, AsyncForkSession
from repro.core.policy import ForkPolicy, MemCgroup

__all__ = ["AsyncFork", "AsyncForkSession", "ForkPolicy", "MemCgroup"]
