"""Async-fork (Algorithm 1 of the paper).

The division of labour:

* **Parent, inside the call** — copy each VMA and its PGD/PUD entries to
  the child, write-protect all the VMA's PMD entries, link the VMA pair
  with a two-way pointer, put the child on a run queue, return to user
  mode.  Cost: microseconds (Figure 22).
* **Child, before returning to user mode** — walk the VMAs and copy every
  still-write-protected PMD entry plus its 512 PTEs from the parent,
  taking the PTE-table page lock (``trylock_page``) so it never races the
  parent's proactive synchronization on the same table.  Optionally
  sharded over multiple kernel threads (§5.1).
* **Parent, after the call** — every checkpoint (Table 3) that is about to
  modify PTEs checks the covering PMD entries' R/W flag; a
  write-protected entry means "not yet copied", so the parent copies the
  PMD entry and its full PTE table to the child *before* modifying it
  (proactive synchronization, §4.2).  VMA-wide modifications consult the
  two-way pointer first: a closed connection means the whole VMA is
  already copied and no PMD scan is needed (§4.3).

Error handling follows §4.4: whichever phase hits out-of-memory rolls the
parent's R/W flags back, the child is SIGKILLed, and (for a failed
proactive sync) the error code travels to the child through the two-way
pointer.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import hooks, runtime
from repro.config import AsyncForkConfig
from repro.errors import ForkError, OutOfMemoryError
from repro.faults.plan import SITE_CHILD_COPY, FaultPlan
from repro.kernel.clock import Clock
from repro.kernel.kthread import CopyWorker, pool_stats, shard_round_robin
from repro.kernel.costs import DEFAULT_COSTS, CostModel
from repro.kernel.forks.base import (
    ForkEngine,
    ForkResult,
    ForkSession,
    ForkStats,
)
from repro.kernel.task import Process, ProcessState, SIGKILL
from repro.mem import checkpoints as cp
from repro.mem.address_space import AddressSpace
from repro.mem.checkpoints import CheckpointEvent
from repro.mem.cow import clone_pte_table_into
from repro.mem.directory import require_pte_table
from repro.mem.vma import Vma
from repro.obs import phases as obs_phases
from repro.obs import tracer as obs
from repro.units import PTE_TABLE_SPAN


class AsyncFork(ForkEngine):
    """The Async-fork engine."""

    name = "async"

    def __init__(
        self,
        clock: Optional[Clock] = None,
        costs: CostModel = DEFAULT_COSTS,
        config: AsyncForkConfig = AsyncForkConfig(),
    ) -> None:
        super().__init__(clock, costs)
        config_check(config)
        self.config = config
        #: Active sessions per parent pid (for consecutive snapshots).
        self._sessions: dict[int, "AsyncForkSession"] = {}
        #: Chaos plan injecting at the ``kernel.fork.child-copy`` site;
        #: captured by each session at fork time.
        self.fault_plan: Optional[FaultPlan] = None

    def attach_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install (or remove with ``None``) the chaos fault plan."""
        self.fault_plan = plan

    def fork(self, parent: Process) -> ForkResult:
        """Algorithm 1, parent part (lines 1-6)."""
        # fork() is a syscall: the upper-level copy, the PMD protection
        # and any consecutive-snapshot sync run on the parent's own
        # user path.
        with hooks.context(("user", parent.mm.name)):
            return self._fork(parent)

    def _fork(self, parent: Process) -> ForkResult:
        from repro.errors import ConfigurationError
        from repro.mem.hugepage import count_huge_mappings

        if count_huge_mappings(parent.mm):
            # §4.2: the PMD R/W bit doubles as the copied-marker, which
            # is only free while no PMD maps a huge page.  (THP workloads
            # would not benefit anyway — their page tables are tiny.)
            raise ConfigurationError(
                "Async-fork cannot fork a process with transparent huge "
                "pages mapped: the PMD R/W bit is in use (§4.2)"
            )

        stats = ForkStats()
        probe = runtime.fork_probe(self, parent)
        start = self.clock.now

        # Consecutive snapshots (§5.2): a VMA's page table may be copied by
        # only one child at a time.  If a previous child is still copying a
        # VMA, proactively push the whole VMA to it before re-forking.
        previous = self._sessions.get(parent.pid)
        if previous is not None and previous.active:
            for vma in list(parent.mm.vmas):
                if vma.peer is not None and vma.peer.open:
                    previous.sync_vma(vma, reason="async:prev-child-sync")
            # Every connection is now closed, so the previous session has
            # nothing left to copy; retire it before re-protecting PMDs,
            # otherwise its copy threads would race the new snapshot.
            previous.drain_closed_vmas()

        with self.clock.kernel_section("fork:async"):
            child = None
            marked: list[tuple] = []
            try:
                child = self._create_child(parent, link_vmas=True)
                for vma in parent.mm.vmas:
                    stats.parent_dir_entries += self._copy_upper_levels(
                        parent.mm, child.mm, vma
                    )
                    stats.pmd_marked += self._write_protect_pmds(
                        parent.mm, vma, marked
                    )
            except OutOfMemoryError as exc:
                # §4.4 case 1: roll back every PMD entry we protected.
                for pmd, idx in marked:
                    pmd.set_write_protected(idx, False)
                self._unlink_vmas(parent)
                if child is not None:
                    child.exit(code=-1)
                stats.record_error("parent-copy")
                probe.failed()
                raise ForkError(
                    f"Async-fork parent phase failed: {exc}",
                    phase="parent-copy",
                ) from exc
            counts = parent.mm.page_table.level_counts()
            self.clock.advance(self.costs.async_fork_ns(counts))
            if obs.ACTIVE:
                obs_phases.emit_fork_phases(
                    "async", counts, self.costs, start
                )
        stats.parent_call_ns = self.clock.now - start

        child.state = ProcessState.KERNEL_COPY
        child.mm.rss = parent.mm.rss
        session = AsyncForkSession(self, parent, child, stats, self.config)
        self._sessions[parent.pid] = session
        probe.async_started(session)
        return ForkResult(child=child, stats=stats, session=session)

    @staticmethod
    def _write_protect_pmds(
        parent_mm: AddressSpace, vma: Vma, marked: list
    ) -> int:
        count = 0
        for pmd, idx, _ in parent_mm.page_table.iter_pmd_slots(
            vma.start, vma.end
        ):
            if pmd.is_present(idx):
                pmd.set_write_protected(idx, True)
                marked.append((pmd, idx))
                count += 1
        return count

    @staticmethod
    def _unlink_vmas(parent: Process) -> None:
        for vma in parent.mm.vmas:
            if vma.peer is not None:
                vma.peer.close()


class AsyncForkSession(ForkSession):
    """Child copier + proactive synchronization for one Async-fork."""

    def __init__(
        self,
        engine: AsyncFork,
        parent: Process,
        child: Process,
        stats: ForkStats,
        config: AsyncForkConfig,
    ) -> None:
        super().__init__(parent, child, stats)
        self.engine = engine
        self.config = config
        #: Chaos plan for the ``kernel.fork.child-copy`` site, captured
        #: from the engine at fork time.
        self._fault_plan: Optional[FaultPlan] = engine.fault_plan
        #: Remaining steps of an injected copy-thread hang.
        self._hung_steps = 0
        #: Attached by the runtime checkers (repro.analysis.runtime).
        self._analysis_probe = None
        # Shard the child's VMA worklist over the copy threads (§5.1).
        # Each item is one child VMA; within a VMA the thread walks PMD
        # spans.
        threads = max(1, config.copy_threads)
        self._workers = [CopyWorker(i) for i in range(threads)]
        shard_round_robin(
            list(child.mm.vmas), self._workers, _VmaCopyCursor
        )
        if hooks.EDGE_HOOKS:
            # Spawning the copy threads orders them after everything the
            # parent did up to the fork call.
            for worker in self._workers:
                hooks.notify_edge(
                    "fork",
                    None,
                    ("copy", child.mm.name, worker.worker_id),
                )
        parent.mm.subscribe(self._on_checkpoint)

    # ------------------------------------------------------------------
    # child side (Algorithm 1, lines 15-24)
    # ------------------------------------------------------------------

    def child_step(self) -> int:
        """Advance every copy thread by one PMD entry; returns copies made.

        The functional tier drives this cooperatively so tests can
        interleave parent activity at PMD granularity.

        Fault plan: each call asks the ``kernel.fork.child-copy`` site.
        ``sigkill`` is the mid-copy child death of §4.4 case 2 (as if
        the OOM killer picked the child); ``hang`` parks every copy
        thread for ``magnitude`` steps — long enough that a supervision
        watchdog must abort the snapshot.
        """
        if not self.active:
            return 0
        if self._hung_steps > 0:
            self._hung_steps -= 1
            return 0
        if self._fault_plan is not None:
            # Keyed by name, not pid: pids come from a process-global
            # counter and would break bit-identical replay.
            spec = self._fault_plan.fire(
                SITE_CHILD_COPY, child=self.child.name
            )
            if spec is not None:
                if spec.kind == "sigkill":
                    self._fail_child_copy("injected:sigkill")
                else:
                    self._hung_steps = max(1, spec.magnitude)
                return 0
        copied = 0
        child_name = self.child.mm.name
        for worker in self._workers:
            with hooks.context(("copy", child_name, worker.worker_id)):
                copied += self._worker_step(worker)
        if all(w.idle for w in self._workers):
            self._complete()
        return copied

    def worker_stats(self) -> dict:
        """Aggregate copy-thread counters (tables, skips, yields)."""
        return pool_stats(self._workers)

    def run_to_completion(self) -> int:
        """Drain the whole worklist (the common non-interleaved path).

        Raises if the copy cannot make progress because a PTE-table page
        lock is held indefinitely — in the kernel the child would sleep,
        but in the cooperative model an external holder must release it.
        """
        total = 0
        stalled = 0
        while self.active:
            step = self.child_step()
            total += step
            if self.failed:
                break
            if step == 0 and self.active:
                stalled += 1
                if stalled > 4096:
                    raise RuntimeError(
                        "child copy stalled: a PTE-table page lock is "
                        "held and never released"
                    )
            else:
                stalled = 0
        return total

    def drain_closed_vmas(self) -> None:
        """Drop worklist entries whose two-way pointer is already closed.

        Used when a consecutive snapshot proactively completed this
        session's VMAs: a closed connection means "fully copied", so the
        copy threads must not touch those VMAs again.
        """
        if not self.active:
            return
        for worker in self._workers:
            remaining = [
                c
                for c in worker.cursors
                if c.vma.peer is not None and c.vma.peer.open
            ]
            worker.cursors.clear()
            worker.cursors.extend(remaining)
        if all(w.idle for w in self._workers):
            self._complete()

    def cancel(self) -> None:
        """Retire the session because the child is exiting early.

        A child that dies before the copy completes (a BGSAVE abort, an
        OOM kill) must not leave the parent behind with dangling
        copied-markers and open two-way pointers: a later snapshot would
        otherwise "synchronize" tables into the dead child's address
        space.  Mirrors the §4.4 child-death cleanup without treating
        the fork as failed.
        """
        if not self.active:
            return
        self._rollback_all_wp()
        for vma in self.parent.mm.vmas:
            if vma.peer is not None:
                vma.peer.close()
        for worker in self._workers:
            worker.cursors.clear()
        self.active = False
        self._teardown()

    def _worker_step(self, worker: CopyWorker) -> int:
        while worker.cursors:
            cursor: _VmaCopyCursor = worker.cursors[0]
            if self._vma_error_abort(cursor.vma):
                return 0
            if cursor.vma.peer is None or not cursor.vma.peer.open:
                # Connection closed: the VMA was fully synchronized by the
                # parent (VMA-wide modification or consecutive snapshot).
                worker.cursors.popleft()
                continue
            base = cursor.peek()
            if base is None:
                # VMA exhausted: close the connection if no error occurred.
                self._finish_vma(cursor.vma)
                worker.cursors.popleft()
                continue
            try:
                status = self._copy_table(base, reason=None)
            except OutOfMemoryError:
                self._fail_child_copy("child-copy")
                return 0
            if status == "busy":
                # trylock_page lost: the parent (or a migration) holds the
                # table; retry this very base on the next step.
                return 0
            cursor.advance()
            if status == "copied":
                worker.note_copy()
                self.stats.child_tables_copied += 1
                return 1
            worker.note_skip()
        return 0

    def _vma_error_abort(self, child_vma: Vma) -> bool:
        """§4.4 case 3 handoff: the child checks the two-way pointer for an
        error code before (and after) copying a VMA."""
        pointer = child_vma.peer
        if pointer is not None and pointer.error is not None:
            self._fail_child_copy(f"sync-error:{pointer.error}")
            return True
        return False

    def _finish_vma(self, child_vma: Vma) -> None:
        if self._vma_error_abort(child_vma):
            return
        pointer = child_vma.peer
        if pointer is not None:
            pointer.close()

    def _complete(self) -> None:
        self.active = False
        if hooks.EDGE_HOOKS:
            # Joining the copy threads: the child may run (and the
            # parent may retire the session) only after every worker's
            # writes are visible.
            child_ctx = ("user", self.child.mm.name)
            for worker in self._workers:
                src = ("copy", self.child.mm.name, worker.worker_id)
                hooks.notify_edge("join", src, child_ctx)
                hooks.notify_edge("join", src, hooks.current_context())
        if not self.failed and self.child.state is ProcessState.KERNEL_COPY:
            self.child.state = ProcessState.RUNNING
        self._teardown()
        if not self.failed and self._analysis_probe is not None:
            self._analysis_probe.session_completed(self)

    def _teardown(self) -> None:
        if self._on_checkpoint in self.parent.mm.checkpoint_subscribers:
            self.parent.mm.unsubscribe(self._on_checkpoint)
        if self.engine._sessions.get(self.parent.pid) is self:
            del self.engine._sessions[self.parent.pid]

    # ------------------------------------------------------------------
    # the copy primitive (used by both sides)
    # ------------------------------------------------------------------

    def _copy_table(self, base: int, reason: Optional[str]) -> str:
        """Copy the PMD entry + 512 PTEs covering ``base`` to the child.

        Returns ``'copied'`` on success, ``'skip'`` when there is nothing
        to do (absent, or already copied by the other side), or ``'busy'``
        when the PTE-table page lock is held — the caller must retry
        (child copier) or may proceed knowing the lock holder completes
        the copy (parent sync; see §4.2's trylock discussion).
        """
        found = self.parent.mm.page_table.walk_pmd(base)
        if found is None:
            return "skip"
        pmd, idx = found
        if not pmd.is_present(idx) or not pmd.is_write_protected(idx):
            return "skip"
        leaf = require_pte_table(pmd.get(idx))
        if not leaf.page.trylock():
            return "busy"
        try:
            child_found = self.child.mm.page_table.walk_pmd(
                base, create=True
            )
            assert child_found is not None
            child_pmd, child_idx = child_found
            if child_pmd.is_present(child_idx):
                # Already copied by the other side between our flag check
                # and the lock; nothing to do.
                pmd.set_write_protected(idx, False)
                return "skip"
            child_leaf = self.child.mm.page_table.new_pte_table()
            copied = clone_pte_table_into(
                leaf, child_leaf, self.parent.mm.frames
            )
            child_pmd.set(child_idx, child_leaf)
            if hooks.EDGE_HOOKS:
                # The table is published to the child's walker the
                # moment the PMD slot is filled.
                hooks.notify_edge(
                    "publish", None, ("user", self.child.mm.name)
                )
            # Lines 11-12 / 20-21: PMD writable again, PTEs write-protected
            # (done inside the clone) to preserve the CoW strategy.
            pmd.set_write_protected(idx, False)
            span = (base // PTE_TABLE_SPAN) * PTE_TABLE_SPAN
            self._shootdown_parent_span(span)
            if reason is not None:
                self.stats.parent_pte_entries += copied
            elif obs.ACTIVE:
                # Child-side copy: no kernel section brackets it (it
                # runs on the copy threads), so mark it directly.
                obs.emit_instant(
                    "child.pte_copy",
                    obs.CAT_PHASE,
                    self.engine.clock.now,
                    base=base,
                    entries=copied,
                )
            return "copied"
        finally:
            leaf.page.unlock()

    def _shootdown_parent_span(self, span: int) -> None:
        """Shoot down the parent's TLB for a just-copied table's span.

        The clone write-protected the *parent's* PTEs (the data pages
        are CoW-shared now); any writable translation the parent still
        caches for the span must die, or a parent store lands in a
        frame the child's snapshot references (the shootdown PR 1's
        checkers found missing).
        """
        self.parent.mm._flush_tlb_range(span, span + PTE_TABLE_SPAN)

    # ------------------------------------------------------------------
    # parent side: proactive synchronization (Algorithm 1, lines 7-14)
    # ------------------------------------------------------------------

    def _on_checkpoint(self, event: CheckpointEvent) -> None:
        if not self.active or event.mm is not self.parent.mm:
            return
        if event.name == cp.HANDLE_MM_FAULT:
            if event.write and event.detail.get("pmd_wp"):
                self._sync_one(event.start)
        elif event.name in (cp.ZAP_PMD_RANGE, cp.FOLLOW_PAGE_PTE):
            self._sync_range(event.start, event.end)
        elif event.is_vma_wide:
            for vma in self.parent.mm.vmas.overlapping(
                event.start, event.end
            ):
                if self.config.use_two_way_pointer:
                    # Two-way pointer fast path: a closed connection means
                    # the VMA is fully copied — skip without scanning PMDs.
                    if vma.peer is not None and vma.peer.open:
                        self.sync_vma(vma)
                else:
                    # Ablation: without the pointer the parent has no O(1)
                    # answer and must loop over every PMD entry.
                    self._scan_vma_slots(vma)

    def _needs_sync(self, vaddr: int) -> bool:
        found = self.parent.mm.page_table.walk_pmd(vaddr)
        return (
            found is not None
            and found[0].is_present(found[1])
            and found[0].is_write_protected(found[1])
        )

    def _sync_one(self, vaddr: int) -> None:
        if not self._needs_sync(vaddr):
            return
        clock = self.engine.clock
        try:
            with clock.kernel_section(
                "async:proactive-sync", self.engine.costs.table_fault_ns()
            ):
                # 'busy' means the child copier holds the table lock right
                # now: the parent (which would sleep on the lock in the
                # kernel) proceeds once the holder finishes the copy.
                if self._copy_table(vaddr, reason="sync") == "copied":
                    self.stats.proactive_syncs += 1
        except OutOfMemoryError:
            # The OOM propagates *through* the kernel section so the
            # episode is recorded as aborted, not as a completed
            # interruption (Fig. 11), before the §4.4 rollback runs.
            self._fail_proactive_sync(vaddr)

    def _sync_range(self, start: int, end: int) -> None:
        base = (start // PTE_TABLE_SPAN) * PTE_TABLE_SPAN
        while base < end:
            self._sync_one(base)
            base += PTE_TABLE_SPAN

    def _scan_vma_slots(self, vma: Vma) -> None:
        """Pointer-less VMA-wide handling: examine every PMD entry."""
        base = (vma.start // PTE_TABLE_SPAN) * PTE_TABLE_SPAN
        while base < vma.end:
            self.stats.pmd_checks += 1
            if self._needs_sync(base):
                self._sync_one(base)
            base += PTE_TABLE_SPAN

    def sync_vma(self, vma: Vma, reason: str = "async:vma-sync") -> None:
        """Copy every remaining table of ``vma`` and close its pointer."""
        pointer = vma.peer
        if pointer is None or not pointer.open:
            return
        pointer.lock()
        try:
            clock = self.engine.clock
            base = (vma.start // PTE_TABLE_SPAN) * PTE_TABLE_SPAN
            while base < vma.end:
                self.stats.pmd_checks += 1
                found = self.parent.mm.page_table.walk_pmd(base)
                if (
                    found is not None
                    and found[0].is_present(found[1])
                    and found[0].is_write_protected(found[1])
                ):
                    try:
                        with clock.kernel_section(
                            reason, self.engine.costs.table_fault_ns()
                        ):
                            status = self._copy_table(base, reason="sync")
                            if status == "copied":
                                self.stats.proactive_syncs += 1
                    except OutOfMemoryError:
                        # Propagating through the section marks the
                        # episode aborted before the §4.4 rollback.
                        pointer.unlock()
                        self._fail_proactive_sync(base, vma=vma)
                        return
                base += PTE_TABLE_SPAN
        finally:
            if pointer.locked:
                pointer.unlock()
        pointer.close()

    # ------------------------------------------------------------------
    # §4.4 error handling
    # ------------------------------------------------------------------

    def _fail_child_copy(self, why: str) -> None:
        """Case 2: roll back remaining R/W flags and SIGKILL the child."""
        self.mark_failed(why)
        self.stats.record_error("child-copy")
        self._rollback_all_wp()
        self.child.signal(SIGKILL)
        self.child.deliver_signals()
        for worker in self._workers:
            worker.cursors.clear()
        self.active = False
        self._teardown()
        if self._analysis_probe is not None:
            self._analysis_probe.session_failed(self)

    def _fail_proactive_sync(
        self, vaddr: int, vma: Optional[Vma] = None
    ) -> None:
        """Case 3: roll back only the containing VMA's flags and store the
        error code in the two-way pointer for the child to find."""
        self.stats.record_error("proactive-sync")
        if vma is None:
            vma = self.parent.mm.vmas.find(vaddr)
        if vma is not None:
            self._rollback_vma_wp(vma)
            if vma.peer is not None:
                vma.peer.error = "ENOMEM"
        self.mark_failed("proactive-sync")
        if self._analysis_probe is not None:
            self._analysis_probe.session_failed(self)

    def _rollback_all_wp(self) -> None:
        for vma in self.parent.mm.vmas:
            self._rollback_vma_wp(vma)

    def _rollback_vma_wp(self, vma: Vma) -> None:
        for pmd, idx, _ in self.parent.mm.page_table.iter_pmd_slots(
            vma.start, vma.end
        ):
            if pmd.is_write_protected(idx):
                pmd.set_write_protected(idx, False)


class _VmaCopyCursor:
    """Iterates the PMD spans of one child VMA."""

    __slots__ = ("vma", "_base")

    def __init__(self, vma: Vma) -> None:
        self.vma = vma
        self._base = (vma.start // PTE_TABLE_SPAN) * PTE_TABLE_SPAN

    def peek(self) -> Optional[int]:
        """Current PMD span base, or ``None`` when exhausted."""
        if self._base >= self.vma.end:
            return None
        return self._base

    def advance(self) -> None:
        """Move to the next PMD span."""
        self._base += PTE_TABLE_SPAN


#: Size of the two-way pointer added to each VMA (§5.2: "the only memory
#: overhead of Async-fork comes from the added pointer (8B) in each VMA").
TWO_WAY_POINTER_BYTES = 8


def memory_overhead_bytes(n_vmas: int) -> int:
    """Async-fork's total memory overhead for ``n_vmas`` VMAs.

    §5.2's worked example: a 512 GB machine running 400 processes holds
    roughly 760,000 VMAs, so the overhead is ~6 MB — negligible.
    """
    if n_vmas < 0:
        raise ValueError("VMA count cannot be negative")
    return n_vmas * TWO_WAY_POINTER_BYTES


def config_check(config: AsyncForkConfig) -> None:
    """Reject configurations the design cannot support (§4.2).

    Async-fork reuses the PMD R/W bit as its copied-marker, which is only
    free when transparent huge pages are disabled — exactly the deployment
    recommendation of Redis/KeyDB/MongoDB/Couchbase the paper cites.
    """
    from repro.errors import ConfigurationError

    if config.enabled and config.huge_pages:
        raise ConfigurationError(
            "Async-fork requires transparent huge pages to be disabled: "
            "the PMD R/W bit doubles as the copied-marker (§4.2)"
        )
