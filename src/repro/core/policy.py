"""Memory-cgroup style fork selection (§5.2 "Flexibility").

The paper exposes Async-fork through a *memory cgroup* parameter ``F``:
``F = 0`` keeps the default fork, any positive value enables Async-fork
with that many child copy threads — no application change required.  This
module models that interface so the engine selection is data-driven, just
like in the deployed system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import AsyncForkConfig
from repro.errors import ConfigurationError
from repro.kernel.clock import Clock
from repro.kernel.costs import DEFAULT_COSTS, CostModel
from repro.kernel.forks.base import ForkEngine
from repro.kernel.forks.default import DefaultFork
from repro.kernel.task import Process


@dataclass
class MemCgroup:
    """One memory cgroup with its Async-fork policy."""

    name: str
    #: The paper's ``F`` parameter: 0 disables Async-fork; a positive value
    #: enables it and sets the number of child copy threads.
    async_fork_threads: int = 0
    huge_pages: bool = False
    members: set = field(default_factory=set)

    @property
    def async_fork_enabled(self) -> bool:
        """Whether members of this cgroup fork through Async-fork."""
        return self.async_fork_threads > 0

    def to_config(self) -> AsyncForkConfig:
        """Translate the cgroup parameter into an engine configuration."""
        return AsyncForkConfig(
            enabled=self.async_fork_enabled,
            copy_threads=max(1, self.async_fork_threads),
            huge_pages=self.huge_pages,
        )


class ForkPolicy:
    """Routes each process's fork() to the engine its cgroup selects."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.costs = costs
        self._cgroups: dict[str, MemCgroup] = {}
        self._membership: dict[int, str] = {}
        self._default_engine = DefaultFork(self.clock, costs)
        self._async_engines: dict[str, ForkEngine] = {}

    def create_cgroup(
        self, name: str, async_fork_threads: int = 0, huge_pages: bool = False
    ) -> MemCgroup:
        """Create a cgroup; ``async_fork_threads`` is the ``F`` parameter."""
        if name in self._cgroups:
            raise ValueError(f"cgroup {name!r} already exists")
        cgroup = MemCgroup(name, async_fork_threads, huge_pages)
        if cgroup.async_fork_enabled and huge_pages:
            raise ConfigurationError(
                "cannot enable Async-fork in a cgroup with huge pages"
            )
        self._cgroups[name] = cgroup
        return cgroup

    def attach(self, process: Process, cgroup_name: str) -> None:
        """Move a process into a cgroup (echo pid > cgroup.procs)."""
        cgroup = self._cgroups[cgroup_name]
        old = self._membership.get(process.pid)
        if old is not None:
            self._cgroups[old].members.discard(process.pid)
        cgroup.members.add(process.pid)
        self._membership[process.pid] = cgroup_name

    def engine_for(self, process: Process) -> ForkEngine:
        """The fork engine this process's cgroup prescribes.

        Processes outside any cgroup — or in one with ``F = 0`` — use the
        default fork, exactly as in the paper.
        """
        name = self._membership.get(process.pid)
        if name is None:
            return self._default_engine
        cgroup = self._cgroups[name]
        if not cgroup.async_fork_enabled:
            return self._default_engine
        engine = self._async_engines.get(name)
        if engine is None:
            from repro.core.async_fork import AsyncFork

            engine = AsyncFork(self.clock, self.costs, cgroup.to_config())
            self._async_engines[name] = engine
        return engine

    def fork(self, process: Process):
        """Fork ``process`` with whatever engine its cgroup selects."""
        return self.engine_for(process).fork(process)
